"""Training configuration.

Defaults follow the paper's Appendix B: Adam with learning rate 1e-3 and
L2 regularization factor 1e-3, validation every 20 epochs with model
selection on Recall@10.  The epoch budget is configurable because the
synthetic analogues are much smaller than the paper's datasets and
converge in far fewer epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["TrainingConfig"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyperparameters of the optimization loop.

    Parameters
    ----------
    num_epochs:
        Total training epochs.
    batch_size:
        Sliding-window instances per mini-batch.
    learning_rate / weight_decay:
        Adam step size and L2 regularization factor (paper: 1e-3 / 1e-3).
    n_p:
        Number of target items per training window (the paper's ``n_p``).
    eval_every:
        Validate every this many epochs (paper: 20); ignored when no
        validation function is supplied to the trainer.
    keep_best:
        Restore the parameters of the best validation epoch after training.
    seed:
        Seed of the trainer's random generator (shuffling, negatives).
    verbose:
        Print one line per epoch/validation.
    loss:
        Name of the ranking loss (see
        :data:`repro.training.losses.LOSS_FUNCTIONS`).  ``None`` uses the
        model's ``recommended_loss`` attribute when present, otherwise the
        paper's BPR loss.
    num_negatives:
        Sampled negatives per positive.  ``None`` uses the model's
        ``recommended_num_negatives`` when present, otherwise 1 (the
        paper's setting).
    max_grad_norm:
        Optional global gradient-norm clipping threshold.
    dtype:
        Compute dtype of the training run (``"float32"`` — the default
        fast path — or ``"float64"``).  The trainer casts the model's
        parameters before the first epoch; ``None`` leaves the model's
        dtype untouched (seed behaviour: ``float64`` at construction).
        Pin ``"float64"`` for bit-parity with the seed training runs.
    sparse_embedding_grad:
        Record embedding-lookup gradients as indexed rows and take the
        row-wise ("lazy") optimizer path instead of materializing a dense
        ``(num_items, d)`` gradient per lookup.  The legacy dense path
        (``False``) is bit-identical to the seed engine.
    vectorized_sampling:
        Use the batched negative sampler (``False`` selects the legacy
        per-element Python rejection loop).
    validate_indices:
        Re-validate embedding index ranges on *every* lookup inside the
        epoch loop (debug flag).  The trainer always validates the
        training instances and sampler output once up front, so the
        per-lookup check is redundant and off by default.
    fused_scoring:
        Score positive and negative candidates through one fused forward
        (:meth:`~repro.models.base.SequentialRecommender.score_item_pairs`)
        instead of two separate :meth:`score_items` passes.  Same
        objective and gradients up to floating-point accumulation order;
        ``False`` restores the two-pass step of the earlier substrate.
    loader_workers:
        Worker processes for batch construction + negative sampling
        (:class:`~repro.parallel.loader.ParallelBatchLoader`).  ``0``
        (the default) keeps everything in-process and bit-identical to
        the earlier trainer; ``> 0`` switches to the deterministic
        prefetching loader, whose batch stream is identical for any
        worker count at a fixed seed (but is a different random stream
        from the in-process path).
    prefetch_batches:
        Bound of the loader's ready-batch queue (only with
        ``loader_workers > 0``).
    """

    num_epochs: int = 30
    batch_size: int = 256
    learning_rate: float = 1e-3
    weight_decay: float = 1e-3
    n_p: int = 3
    eval_every: int = 10
    keep_best: bool = True
    seed: int = 0
    verbose: bool = False
    loss: str | None = None
    num_negatives: int | None = None
    max_grad_norm: float | None = None
    dtype: str | None = "float32"
    sparse_embedding_grad: bool = True
    vectorized_sampling: bool = True
    validate_indices: bool = False
    fused_scoring: bool = True
    loader_workers: int = 0
    prefetch_batches: int = 4

    def __post_init__(self):
        if self.num_epochs < 1:
            raise ValueError("num_epochs must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.weight_decay < 0:
            raise ValueError("weight_decay must be non-negative")
        if self.n_p < 1:
            raise ValueError("n_p must be positive")
        if self.eval_every < 1:
            raise ValueError("eval_every must be positive")
        if self.num_negatives is not None and self.num_negatives < 1:
            raise ValueError("num_negatives must be positive")
        if self.max_grad_norm is not None and self.max_grad_norm <= 0:
            raise ValueError("max_grad_norm must be positive")
        if self.dtype is not None and str(self.dtype) not in ("float32", "float64"):
            raise ValueError("dtype must be 'float32', 'float64' or None")
        if self.loader_workers < 0:
            raise ValueError("loader_workers must be non-negative")
        if self.prefetch_batches < 1:
            raise ValueError("prefetch_batches must be positive")

    def with_overrides(self, **overrides) -> "TrainingConfig":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)
