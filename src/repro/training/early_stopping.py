"""Early stopping on the validation metric.

The paper trains for a fixed epoch budget and keeps the parameters of the
best validation epoch.  Early stopping is a practical extension on top of
the same bookkeeping: when the validation metric has not improved by at
least ``min_delta`` for ``patience`` consecutive evaluations, training
stops — useful on the larger synthetic presets where the fixed budget
wastes epochs after convergence.
"""

from __future__ import annotations

__all__ = ["EarlyStopping"]


class EarlyStopping:
    """Track a higher-is-better validation metric and signal when to stop.

    Parameters
    ----------
    patience:
        Number of consecutive non-improving evaluations tolerated before
        :meth:`update` returns True (stop).
    min_delta:
        Minimum increase over the best seen value that counts as an
        improvement.
    """

    def __init__(self, patience: int = 3, min_delta: float = 0.0):
        if patience < 1:
            raise ValueError("patience must be positive")
        if min_delta < 0:
            raise ValueError("min_delta must be non-negative")
        self.patience = patience
        self.min_delta = min_delta
        self.best_score = float("-inf")
        self.best_step = -1
        self.num_bad_evaluations = 0
        self._step = 0

    @property
    def should_stop(self) -> bool:
        """Whether the patience budget has been exhausted."""
        return self.num_bad_evaluations >= self.patience

    def update(self, score: float) -> bool:
        """Record one validation ``score``; return True when training should stop."""
        self._step += 1
        if score > self.best_score + self.min_delta:
            self.best_score = score
            self.best_step = self._step
            self.num_bad_evaluations = 0
        else:
            self.num_bad_evaluations += 1
        return self.should_stop

    def reset(self) -> None:
        """Forget all recorded scores (reuse the object for another run)."""
        self.best_score = float("-inf")
        self.best_step = -1
        self.num_bad_evaluations = 0
        self._step = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"EarlyStopping(patience={self.patience}, best={self.best_score:.4f}, "
            f"bad={self.num_bad_evaluations})"
        )
