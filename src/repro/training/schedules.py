"""Learning-rate schedules.

The paper trains every model with a constant Adam learning rate of 1e-3;
schedules are an extension used by the convergence analysis
(:mod:`repro.analysis.convergence`) and available to any training run.  A
schedule maps a 1-based epoch number to the learning rate for that epoch;
the trainer assigns it to the optimizer at the start of each epoch.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineDecaySchedule",
    "WarmupSchedule",
]


class LearningRateSchedule:
    """Base class: a callable mapping ``epoch`` (1-based) to a learning rate."""

    def __init__(self, base_lr: float):
        if base_lr <= 0:
            raise ValueError("base_lr must be positive")
        self.base_lr = base_lr

    def __call__(self, epoch: int) -> float:
        if epoch < 1:
            raise ValueError("epoch numbering starts at 1")
        return self._rate(epoch)

    def _rate(self, epoch: int) -> float:
        raise NotImplementedError

    def preview(self, num_epochs: int) -> list[float]:
        """Learning rate of every epoch in ``[1, num_epochs]`` (for plots/tests)."""
        return [self(epoch) for epoch in range(1, num_epochs + 1)]


class ConstantSchedule(LearningRateSchedule):
    """The paper's setting: a fixed learning rate."""

    def _rate(self, epoch: int) -> float:
        return self.base_lr


class StepDecaySchedule(LearningRateSchedule):
    """Multiply the rate by ``decay`` every ``step_size`` epochs."""

    def __init__(self, base_lr: float, step_size: int = 10, decay: float = 0.5):
        super().__init__(base_lr)
        if step_size < 1:
            raise ValueError("step_size must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.step_size = step_size
        self.decay = decay

    def _rate(self, epoch: int) -> float:
        return self.base_lr * self.decay ** ((epoch - 1) // self.step_size)


class ExponentialDecaySchedule(LearningRateSchedule):
    """Multiply the rate by ``decay`` every epoch."""

    def __init__(self, base_lr: float, decay: float = 0.95):
        super().__init__(base_lr)
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay

    def _rate(self, epoch: int) -> float:
        return self.base_lr * self.decay ** (epoch - 1)


class CosineDecaySchedule(LearningRateSchedule):
    """Cosine annealing from ``base_lr`` to ``final_lr`` over ``num_epochs``."""

    def __init__(self, base_lr: float, num_epochs: int, final_lr: float = 0.0):
        super().__init__(base_lr)
        if num_epochs < 1:
            raise ValueError("num_epochs must be positive")
        if final_lr < 0 or final_lr > base_lr:
            raise ValueError("final_lr must be in [0, base_lr]")
        self.num_epochs = num_epochs
        self.final_lr = final_lr

    def _rate(self, epoch: int) -> float:
        progress = min(epoch - 1, self.num_epochs - 1) / max(self.num_epochs - 1, 1)
        cosine = 0.5 * (1.0 + np.cos(np.pi * progress))
        return self.final_lr + (self.base_lr - self.final_lr) * cosine


class WarmupSchedule(LearningRateSchedule):
    """Linear warm-up for ``warmup_epochs`` epochs, then defer to another schedule."""

    def __init__(self, schedule: LearningRateSchedule, warmup_epochs: int = 3):
        super().__init__(schedule.base_lr)
        if warmup_epochs < 1:
            raise ValueError("warmup_epochs must be positive")
        self.schedule = schedule
        self.warmup_epochs = warmup_epochs

    def _rate(self, epoch: int) -> float:
        if epoch <= self.warmup_epochs:
            return self.schedule(self.warmup_epochs + 1) * epoch / (self.warmup_epochs + 1)
        return self.schedule(epoch)
