"""Grid search over hyperparameters (paper Sections 6.1 and 6.5).

The paper tunes every method exhaustively with grid search on the
validation sets, selecting the configuration with the best Recall@10.
:class:`GridSearch` is a small generic utility: it expands a parameter
grid, calls an objective for every combination, and reports the ranking.
The experiment harness supplies objectives that train a model and return
its validation metric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

__all__ = ["parameter_grid", "GridSearch", "GridSearchResult"]


def parameter_grid(grid: dict[str, list]) -> Iterator[dict]:
    """Yield every combination of the lists in ``grid`` as a dict.

    Keys are iterated in insertion order, so the expansion order is
    deterministic (important for reproducible tie-breaking).
    """
    if not grid:
        yield {}
        return
    keys = list(grid.keys())
    for values in itertools.product(*(grid[key] for key in keys)):
        yield dict(zip(keys, values))


@dataclass
class GridSearchResult:
    """Outcome of a grid search."""

    best_params: dict
    best_score: float
    trials: list[tuple[dict, float]] = field(default_factory=list)

    def top(self, k: int = 5) -> list[tuple[dict, float]]:
        """The ``k`` best (params, score) pairs, best first."""
        return sorted(self.trials, key=lambda item: item[1], reverse=True)[:k]

    def as_rows(self) -> list[dict]:
        """Rows (one per trial) for the reporting helpers."""
        rows = []
        for params, score in self.trials:
            row = dict(params)
            row["score"] = score
            rows.append(row)
        return rows


class GridSearch:
    """Exhaustive search over a parameter grid.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the list of values to try.
    objective:
        Callable ``params -> float`` returning the validation metric
        (higher is better).  Exceptions raised by the objective are *not*
        swallowed: a failing configuration is a bug worth surfacing, not a
        silently skipped trial.
    """

    def __init__(self, grid: dict[str, list],
                 objective: Callable[[dict], float]):
        if not grid:
            raise ValueError("grid must contain at least one parameter")
        for key, values in grid.items():
            if not values:
                raise ValueError(f"parameter {key!r} has an empty value list")
        self.grid = grid
        self.objective = objective

    def __len__(self) -> int:
        """Number of configurations in the grid."""
        total = 1
        for values in self.grid.values():
            total *= len(values)
        return total

    def run(self, verbose: bool = False) -> GridSearchResult:
        """Evaluate every configuration and return the ranking."""
        trials: list[tuple[dict, float]] = []
        best_params: dict = {}
        best_score = float("-inf")
        for params in parameter_grid(self.grid):
            score = float(self.objective(params))
            trials.append((dict(params), score))
            if verbose:
                print(f"grid search: {params} -> {score:.4f}")
            if score > best_score:
                best_score = score
                best_params = dict(params)
        return GridSearchResult(best_params=best_params, best_score=best_score, trials=trials)
