"""Model checkpointing.

The paper's protocol retrains the selected configuration on train +
validation before testing; persisting trained parameters avoids repeating
that work across analyses (run-time study, attention-weight study,
parameter study) that all reuse the same trained models.

A checkpoint is a single ``.npz`` file holding every entry of the model's
``state_dict`` plus a JSON-encoded metadata record (model name,
hyperparameters, training configuration, metrics) stored under the
reserved key ``__metadata__``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.models.base import SequentialRecommender

__all__ = ["save_checkpoint", "load_checkpoint", "read_metadata"]

_METADATA_KEY = "__metadata__"


def save_checkpoint(model: SequentialRecommender, path: str | Path,
                    metadata: dict[str, Any] | None = None) -> Path:
    """Write ``model``'s parameters (and optional ``metadata``) to ``path``.

    Parameters
    ----------
    model:
        Any gradient-based model of the study (non-parametric models have
        no state dict and cannot be checkpointed this way).
    path:
        Target file; the ``.npz`` suffix is appended when missing and
        parent directories are created.
    metadata:
        JSON-serializable record stored alongside the parameters.

    Returns
    -------
    The resolved path the checkpoint was written to.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    state = model.state_dict()
    if _METADATA_KEY in state:
        raise ValueError(f"state dict may not contain the reserved key {_METADATA_KEY!r}")
    payload = dict(state)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    np.savez(path, **payload)
    return path


def _load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def read_metadata(path: str | Path) -> dict[str, Any]:
    """Return the metadata record stored in a checkpoint.

    Only the metadata entry is materialized — the parameter arrays are
    never read, so this stays cheap for large checkpoints.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    with np.load(path, allow_pickle=False) as archive:
        if _METADATA_KEY not in archive.files:
            return {}
        raw = archive[_METADATA_KEY]
    return json.loads(raw.tobytes().decode("utf-8"))


def load_checkpoint(model: SequentialRecommender, path: str | Path,
                    strict: bool = True) -> dict[str, Any]:
    """Load parameters from ``path`` into ``model`` and return the metadata.

    Parameters
    ----------
    model:
        A model with the same architecture (parameter names and shapes) as
        the one that was saved.
    strict:
        When True (default), missing or unexpected parameter names raise a
        ``KeyError`` and shape mismatches raise a ``ValueError``; when
        False, only the intersection of matching names/shapes is loaded.
    """
    arrays = _load_arrays(path)
    raw_metadata = arrays.pop(_METADATA_KEY, None)

    state = model.state_dict()
    missing = sorted(set(state) - set(arrays))
    unexpected = sorted(set(arrays) - set(state))
    if strict and (missing or unexpected):
        raise KeyError(
            f"checkpoint/model mismatch: missing={missing}, unexpected={unexpected}"
        )

    to_load = {}
    for name, value in arrays.items():
        if name not in state:
            continue
        if state[name].shape != value.shape:
            if strict:
                raise ValueError(
                    f"shape mismatch for {name!r}: model {state[name].shape}, "
                    f"checkpoint {value.shape}"
                )
            continue
        to_load[name] = value

    merged = dict(state)
    merged.update(to_load)
    model.load_state_dict(merged)

    if raw_metadata is None:
        return {}
    return json.loads(raw_metadata.tobytes().decode("utf-8"))
