"""Model checkpointing.

The paper's protocol retrains the selected configuration on train +
validation before testing; persisting trained parameters avoids repeating
that work across analyses (run-time study, attention-weight study,
parameter study) that all reuse the same trained models.

A checkpoint is a single ``.npz`` file holding every entry of the model's
``state_dict`` plus a JSON-encoded metadata record (model name,
hyperparameters, training configuration, metrics) stored under the
reserved key ``__metadata__``.

Durability (PR 9): checkpoints are published **atomically** (temp file +
fsync + ``os.replace`` via :mod:`repro.durability.atomic`), so a crash
mid-save never leaves a torn archive at the target path, and the archive
bytes are wrapped in a CRC32-checksummed envelope so silent corruption
is detected at load time.  Readers still accept plain legacy ``.npz``
files; every corruption — torn envelope, flipped bit, mangled zip — is
surfaced as a typed :class:`CheckpointCorruptError` naming the path and
cause instead of a raw ``zipfile``/numpy traceback.
"""

from __future__ import annotations

import io
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.durability.atomic import (
    EnvelopeCorruptError,
    is_checksummed,
    unwrap_checksummed,
    write_checksummed,
)
from repro.models.base import SequentialRecommender

__all__ = ["CheckpointCorruptError", "save_checkpoint", "load_checkpoint",
           "open_checkpoint", "read_metadata"]

_METADATA_KEY = "__metadata__"


class CheckpointCorruptError(RuntimeError):
    """A checkpoint file exists but cannot be trusted or parsed.

    Raised (instead of raw ``zipfile``/``zlib``/numpy errors) when the
    checksummed envelope fails verification, when the file is neither an
    envelope nor a zip archive, or when the archive inside is mangled.
    The message names the path and the underlying cause so ``repro-ham
    serve`` can print a one-line diagnosis.
    """

    def __init__(self, path: str | Path, cause: BaseException | str):
        super().__init__(f"corrupt checkpoint {path}: {cause}")
        self.path = Path(path)


def save_checkpoint(model: SequentialRecommender, path: str | Path,
                    metadata: dict[str, Any] | None = None, *,
                    fault_injector=None) -> Path:
    """Write ``model``'s parameters (and optional ``metadata``) to ``path``.

    The archive is serialized in memory, wrapped in the checksummed
    envelope and published atomically — a crash at any point leaves
    either the previous checkpoint or the new one at ``path``, never a
    torn file.

    Parameters
    ----------
    model:
        Any gradient-based model of the study (non-parametric models have
        no state dict and cannot be checkpointed this way).
    path:
        Target file; the ``.npz`` suffix is appended when missing and
        parent directories are created.
    metadata:
        JSON-serializable record stored alongside the parameters.
    fault_injector:
        Optional :class:`~repro.durability.diskfaults.DiskFaultInjector`
        driving the ``chaos_disk`` crash scenarios; production callers
        leave it ``None``.

    Returns
    -------
    The resolved path the checkpoint was written to.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    state = model.state_dict()
    if _METADATA_KEY in state:
        raise ValueError(f"state dict may not contain the reserved key {_METADATA_KEY!r}")
    payload = dict(state)
    payload[_METADATA_KEY] = np.frombuffer(
        json.dumps(metadata or {}, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez(buffer, **payload)
    write_checksummed(path, buffer.getvalue(), fault_injector=fault_injector)
    return path


def open_checkpoint(path: str | Path):
    """Open a checkpoint archive for reading, verifying integrity first.

    Accepts both the current format (``.npz`` bytes inside the
    checksummed :data:`~repro.durability.atomic.ENVELOPE_MAGIC` envelope)
    and legacy plain ``.npz`` files.  Returns the opened numpy archive
    (usable as a context manager, like ``np.load``).

    Raises
    ------
    FileNotFoundError
        When ``path`` does not exist.
    CheckpointCorruptError
        When the envelope fails verification (torn write, bit flip),
        the file is neither an envelope nor a zip archive, or numpy
        cannot parse the archive inside.
    """
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"checkpoint not found: {path}")
    blob = path.read_bytes()
    if is_checksummed(blob):
        try:
            payload = unwrap_checksummed(blob, source=str(path))
        except EnvelopeCorruptError as error:
            raise CheckpointCorruptError(path, error) from error
    elif blob[:2] == b"PK":
        payload = blob  # legacy plain .npz, pre-envelope
    else:
        raise CheckpointCorruptError(
            path, f"neither a checksummed checkpoint envelope nor a zip "
                  f"archive (leading bytes {blob[:4]!r})")
    try:
        return np.load(io.BytesIO(payload), allow_pickle=False)
    except Exception as error:  # zipfile.BadZipFile, ValueError, OSError...
        raise CheckpointCorruptError(path, error) from error


def _load_arrays(path: str | Path) -> dict[str, np.ndarray]:
    with open_checkpoint(path) as archive:
        try:
            return {name: archive[name] for name in archive.files}
        except Exception as error:
            raise CheckpointCorruptError(path, error) from error


def read_metadata(path: str | Path) -> dict[str, Any]:
    """Return the metadata record stored in a checkpoint.

    Only the metadata entry is materialized — the parameter arrays are
    never read, so this stays cheap for large checkpoints.
    """
    path = Path(path)
    with open_checkpoint(path) as archive:
        if _METADATA_KEY not in archive.files:
            return {}
        try:
            raw = archive[_METADATA_KEY]
        except Exception as error:
            raise CheckpointCorruptError(path, error) from error
    return json.loads(raw.tobytes().decode("utf-8"))


def load_checkpoint(model: SequentialRecommender, path: str | Path,
                    strict: bool = True) -> dict[str, Any]:
    """Load parameters from ``path`` into ``model`` and return the metadata.

    Parameters
    ----------
    model:
        A model with the same architecture (parameter names and shapes) as
        the one that was saved.
    strict:
        When True (default), missing or unexpected parameter names raise a
        ``KeyError`` and shape mismatches raise a ``ValueError``; when
        False, only the intersection of matching names/shapes is loaded.
    """
    arrays = _load_arrays(path)
    raw_metadata = arrays.pop(_METADATA_KEY, None)

    state = model.state_dict()
    missing = sorted(set(state) - set(arrays))
    unexpected = sorted(set(arrays) - set(state))
    if strict and (missing or unexpected):
        raise KeyError(
            f"checkpoint/model mismatch: missing={missing}, unexpected={unexpected}"
        )

    to_load = {}
    for name, value in arrays.items():
        if name not in state:
            continue
        if state[name].shape != value.shape:
            if strict:
                raise ValueError(
                    f"shape mismatch for {name!r}: model {state[name].shape}, "
                    f"checkpoint {value.shape}"
                )
            continue
        to_load[name] = value

    merged = dict(state)
    merged.update(to_load)
    model.load_state_dict(merged)

    if raw_metadata is None:
        return {}
    return json.loads(raw_metadata.tobytes().decode("utf-8"))
