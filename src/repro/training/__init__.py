"""Training: ranking objectives, negative sampling, trainer and grid search.

The paper optimizes every model with the Bayesian Personalized Ranking
objective (Eq. 9): for each truly purchased item in a training window, one
non-purchased item is sampled and the model is trained to score the
purchased item higher.  Adam (lr 1e-3) with an L2 regularization factor of
1e-3 on all embeddings is used throughout.

Extensions beyond the paper's protocol — the session-based ranking losses
(BPR-max, TOP1, TOP1-max, sampled softmax), learning-rate schedules, early
stopping and checkpointing — live in their own modules and are opt-in;
the defaults reproduce the paper's setup exactly.
"""

from repro.training.bench import (
    FAST_PATH_OVERRIDES,
    LEGACY_PATH_OVERRIDES,
    TrainingBenchReport,
    run_training_benchmark,
    write_training_report,
)
from repro.training.bpr import bpr_loss
from repro.training.checkpoint import (CheckpointCorruptError, load_checkpoint,
                                        open_checkpoint, read_metadata,
                                        save_checkpoint)
from repro.training.config import TrainingConfig
from repro.training.early_stopping import EarlyStopping
from repro.training.grid_search import GridSearch, GridSearchResult, parameter_grid
from repro.training.losses import (
    LOSS_FUNCTIONS,
    bpr_max_loss,
    get_loss,
    hinge_loss,
    sampled_softmax_loss,
    top1_loss,
    top1_max_loss,
)
from repro.training.negative_sampling import NegativeSampler
from repro.training.schedules import (
    ConstantSchedule,
    CosineDecaySchedule,
    ExponentialDecaySchedule,
    LearningRateSchedule,
    StepDecaySchedule,
    WarmupSchedule,
)
from repro.training.trainer import Trainer, TrainingResult

__all__ = [
    "bpr_loss",
    "bpr_max_loss",
    "top1_loss",
    "top1_max_loss",
    "sampled_softmax_loss",
    "hinge_loss",
    "LOSS_FUNCTIONS",
    "get_loss",
    "TrainingConfig",
    "NegativeSampler",
    "Trainer",
    "TrainingResult",
    "GridSearch",
    "GridSearchResult",
    "parameter_grid",
    "EarlyStopping",
    "LearningRateSchedule",
    "ConstantSchedule",
    "StepDecaySchedule",
    "ExponentialDecaySchedule",
    "CosineDecaySchedule",
    "WarmupSchedule",
    "save_checkpoint",
    "load_checkpoint",
    "open_checkpoint",
    "read_metadata",
    "CheckpointCorruptError",
    "FAST_PATH_OVERRIDES",
    "LEGACY_PATH_OVERRIDES",
    "TrainingBenchReport",
    "run_training_benchmark",
    "write_training_report",
]
