"""Pairwise and listwise ranking losses.

The paper trains every model with the BPR objective (Eq. 9) and one
sampled negative per positive.  The session-based literature it reviews
(GRU4Rec [1], GRU4Rec++ [2]) additionally introduced the TOP1 and
BPR-max/TOP1-max ranking losses that compare each positive against
*several* sampled negatives; they are provided here so the GRU4Rec++
extension baseline — and any other model — can be trained the way its
original paper trains it.

Shape conventions
-----------------
``positive_scores``
    ``(B, T)`` scores of the true target items.
``negative_scores``
    ``(B, T)`` for a single sampled negative per positive, or
    ``(B, T, N)`` for ``N`` sampled negatives per positive.
``mask``
    Optional ``(B, T)`` boolean array; False marks padded target positions
    excluded from the loss.

Every loss returns a scalar :class:`~repro.autograd.Tensor` (the mean over
real target positions), so they are drop-in replacements for each other in
the trainer.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, functional as F
from repro.training.bpr import bpr_loss

__all__ = [
    "LOSS_FUNCTIONS",
    "get_loss",
    "bpr_loss",
    "bpr_max_loss",
    "top1_loss",
    "top1_max_loss",
    "sampled_softmax_loss",
    "hinge_loss",
]


def _ensure_negative_axis(negative_scores: Tensor) -> Tensor:
    """Return negatives with an explicit trailing axis ``(B, T, N)``."""
    if negative_scores.ndim == 2:
        return negative_scores.expand_dims(2)
    if negative_scores.ndim == 3:
        return negative_scores
    raise ValueError(
        f"negative_scores must be 2- or 3-dimensional, got shape {negative_scores.shape}"
    )


def _masked_mean(per_position: Tensor, mask: np.ndarray | None) -> Tensor:
    """Mean of ``per_position`` (shape ``(B, T)``) over unmasked entries."""
    if mask is None:
        return per_position.mean()
    mask = np.asarray(mask).astype(per_position.dtype)
    if mask.shape != per_position.shape:
        raise ValueError("mask shape must match the per-position loss shape")
    count = max(mask.sum(), 1.0)
    return (per_position * Tensor(mask)).sum() * (1.0 / count)


def _check_shapes(positive_scores: Tensor, negatives: Tensor) -> None:
    if positive_scores.shape != negatives.shape[:2]:
        raise ValueError(
            "positive scores and negative scores disagree on the (batch, target) shape: "
            f"{positive_scores.shape} vs {negatives.shape[:2]}"
        )


def bpr_max_loss(positive_scores: Tensor, negative_scores: Tensor,
                 mask: np.ndarray | None = None,
                 regularization: float = 1.0) -> Tensor:
    """BPR-max loss of Hidasi & Karatzoglou (CIKM'18).

    Each positive is compared against a softmax-weighted mixture of its
    negatives, which focuses the gradient on the highest-scoring
    (most violating) negatives:

    ``-log( sum_j s_j * sigma(r_pos - r_neg_j) ) + reg * sum_j s_j * r_neg_j^2``

    with ``s = softmax(negative scores)``.
    """
    negatives = _ensure_negative_axis(negative_scores)
    _check_shapes(positive_scores, negatives)
    weights = F.softmax(negatives, axis=-1)                              # (B, T, N)
    differences = positive_scores.expand_dims(2) - negatives
    weighted = (weights * F.sigmoid(differences)).sum(axis=-1)           # (B, T)
    per_position = -(weighted + 1e-12).log()
    if regularization:
        penalty = (weights * negatives * negatives).sum(axis=-1)
        per_position = per_position + regularization * penalty
    return _masked_mean(per_position, mask)


def top1_loss(positive_scores: Tensor, negative_scores: Tensor,
              mask: np.ndarray | None = None) -> Tensor:
    """TOP1 loss of the original GRU4Rec paper.

    ``mean_j sigma(r_neg_j - r_pos) + sigma(r_neg_j^2)`` — a pairwise hinge
    approximation plus a score-regularization term on the negatives.
    """
    negatives = _ensure_negative_axis(negative_scores)
    _check_shapes(positive_scores, negatives)
    differences = negatives - positive_scores.expand_dims(2)
    per_pair = F.sigmoid(differences) + F.sigmoid(negatives * negatives)
    return _masked_mean(per_pair.mean(axis=-1), mask)


def top1_max_loss(positive_scores: Tensor, negative_scores: Tensor,
                  mask: np.ndarray | None = None) -> Tensor:
    """TOP1-max loss: TOP1 weighted by the softmax over the negatives."""
    negatives = _ensure_negative_axis(negative_scores)
    _check_shapes(positive_scores, negatives)
    weights = F.softmax(negatives, axis=-1)
    differences = negatives - positive_scores.expand_dims(2)
    per_pair = F.sigmoid(differences) + F.sigmoid(negatives * negatives)
    return _masked_mean((weights * per_pair).sum(axis=-1), mask)


def sampled_softmax_loss(positive_scores: Tensor, negative_scores: Tensor,
                         mask: np.ndarray | None = None) -> Tensor:
    """Cross-entropy over the sampled candidate set {positive} U negatives.

    ``-log softmax([r_pos, r_neg_1, ..., r_neg_N])_pos`` — the sampled
    approximation of the full-softmax next-item objective used by
    generative models such as NextItRec.
    """
    negatives = _ensure_negative_axis(negative_scores)
    _check_shapes(positive_scores, negatives)
    logits = Tensor.concatenate([positive_scores.expand_dims(2), negatives], axis=2)
    log_probabilities = F.log_softmax(logits, axis=-1)
    per_position = -log_probabilities[:, :, 0]
    return _masked_mean(per_position, mask)


def hinge_loss(positive_scores: Tensor, negative_scores: Tensor,
               mask: np.ndarray | None = None, margin: float = 1.0) -> Tensor:
    """Pairwise hinge (margin ranking) loss: ``max(0, margin - (pos - neg))``."""
    if margin <= 0:
        raise ValueError("margin must be positive")
    negatives = _ensure_negative_axis(negative_scores)
    _check_shapes(positive_scores, negatives)
    differences = positive_scores.expand_dims(2) - negatives
    per_pair = (margin - differences).relu()
    return _masked_mean(per_pair.mean(axis=-1), mask)


def _bpr_with_negative_axis(positive_scores: Tensor, negative_scores: Tensor,
                            mask: np.ndarray | None = None) -> Tensor:
    """BPR generalized to several negatives (mean of the pairwise losses)."""
    if negative_scores.ndim == 2:
        return bpr_loss(positive_scores, negative_scores, mask)
    negatives = _ensure_negative_axis(negative_scores)
    _check_shapes(positive_scores, negatives)
    differences = positive_scores.expand_dims(2) - negatives
    per_position = (-F.logsigmoid(differences)).mean(axis=-1)
    return _masked_mean(per_position, mask)


#: Loss registry used by the trainer's ``loss`` configuration field.
LOSS_FUNCTIONS = {
    "bpr": _bpr_with_negative_axis,
    "bpr_max": bpr_max_loss,
    "top1": top1_loss,
    "top1_max": top1_max_loss,
    "sampled_softmax": sampled_softmax_loss,
    "hinge": hinge_loss,
}


def get_loss(name: str):
    """Resolve a loss function by name (see :data:`LOSS_FUNCTIONS`)."""
    key = name.lower()
    if key not in LOSS_FUNCTIONS:
        raise KeyError(
            f"unknown loss {name!r}; available: {', '.join(sorted(LOSS_FUNCTIONS))}"
        )
    return LOSS_FUNCTIONS[key]
