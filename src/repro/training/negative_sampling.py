"""Negative sampling for the BPR objective.

Following the paper (Section 4.4, after [5] and [8]), one non-interacted
item is sampled uniformly for every interacted target item.  "Non-
interacted" is judged against the user's whole training sequence, so the
sampler is constructed once per training run with the training sequences.

The default path is fully vectorized: a whole batch of candidates is
drawn at once, membership against the per-user seen sets is answered by
the CSR-style :class:`~repro.data.seen.SeenIndex` (the same structure
the serving engine uses for its seen masks), and only the colliding
entries are re-drawn — up to ``max_resample`` rounds, mirroring the
legacy per-element bound.  The seed repo's per-element Python rejection
loop is kept behind ``vectorized=False`` as the reference
implementation; both produce the same marginal distribution (uniform
over the user's unseen items).
"""

from __future__ import annotations

import numpy as np

from repro.data.seen import SeenIndex

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Sample negative items per (user, positive item) pair.

    Parameters
    ----------
    num_items:
        Number of real items; samples are drawn from ``[0, num_items)``.
    user_sequences:
        Per-user training sequences; sampled negatives avoid the user's
        interacted items.
    rng:
        Random generator (pass the trainer's generator for reproducibility).
    max_resample:
        How many times a colliding sample is re-drawn before being accepted
        anyway; guards against pathological users who interacted with
        nearly every item.
    vectorized:
        Use the batched resampling path (default).  ``False`` selects the
        legacy per-element Python loop, kept for parity/distribution
        testing and for the benchmark's "legacy path" timing.
    """

    def __init__(self, num_items: int, user_sequences: list[list[int]] | None = None,
                 rng: np.random.Generator | None = None, max_resample: int = 20,
                 vectorized: bool = True, seen_index: SeenIndex | None = None):
        if num_items < 1:
            raise ValueError("num_items must be positive")
        if max_resample < 1:
            raise ValueError("max_resample must be positive")
        if (user_sequences is None) == (seen_index is None):
            raise ValueError("pass exactly one of user_sequences or seen_index")
        self.num_items = num_items
        self.rng = rng or np.random.default_rng()
        self.max_resample = max_resample
        self.vectorized = vectorized
        # A prebuilt index lets data-loading workers attach the parent's
        # shared-memory CSR arrays instead of re-deriving (or pickling)
        # the per-user seen sets.
        self.seen_index = seen_index if seen_index is not None \
            else SeenIndex.from_histories(user_sequences, num_items)
        self._seen_sets: list[set[int]] | None = None

    def seen_items(self, user: int) -> set[int]:
        """The items the sampler avoids for ``user``."""
        if self._seen_sets is None:
            self._seen_sets = [
                self.seen_index.user_set(user)
                for user in range(self.seen_index.num_users)
            ]
        if 0 <= user < len(self._seen_sets):
            return self._seen_sets[user]
        return set()

    def sample(self, users: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Sample negatives of ``shape`` where ``shape[0] == len(users)``.

        Each row of the output corresponds to the user in the same row of
        ``users``; every entry is an item the user has not interacted with
        (best effort, see ``max_resample``).
        """
        users = np.asarray(users, dtype=np.int64)
        if shape[0] != len(users):
            raise ValueError("shape[0] must equal the number of users")
        if self.vectorized:
            return self._sample_vectorized(users, shape)
        return self._sample_rejection_python(users, shape)

    # ------------------------------------------------------------------ #
    # Vectorized path
    # ------------------------------------------------------------------ #
    def _sample_vectorized(self, users: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        negatives = self.rng.integers(0, self.num_items, size=shape)
        if negatives.size == 0 or self.seen_index.total == 0:
            return negatives
        per_row = negatives.size // len(users) if len(users) else 0
        values = negatives.reshape(-1)
        users_flat = np.repeat(users, per_row)
        colliding = self.seen_index.contains(users_flat, values)
        rounds = 0
        while rounds < self.max_resample and colliding.any():
            redraw = self.rng.integers(0, self.num_items, size=int(colliding.sum()))
            values[colliding] = redraw
            # Narrow the collision mask to the entries that are *still* seen.
            colliding[colliding] = self.seen_index.contains(
                users_flat[colliding], redraw
            )
            rounds += 1
        return values.reshape(shape)

    # ------------------------------------------------------------------ #
    # Legacy per-element path (reference implementation)
    # ------------------------------------------------------------------ #
    def _sample_rejection_python(self, users: np.ndarray,
                                 shape: tuple[int, ...]) -> np.ndarray:
        negatives = self.rng.integers(0, self.num_items, size=shape)
        for row, user in enumerate(users):
            seen = self.seen_items(int(user))
            if not seen:
                continue
            row_values = negatives[row].reshape(-1)
            for position, value in enumerate(row_values):
                attempts = 0
                while value in seen and attempts < self.max_resample:
                    value = int(self.rng.integers(0, self.num_items))
                    attempts += 1
                row_values[position] = value
            negatives[row] = row_values.reshape(negatives[row].shape)
        return negatives
