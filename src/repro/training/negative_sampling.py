"""Negative sampling for the BPR objective.

Following the paper (Section 4.4, after [5] and [8]), one non-interacted
item is sampled uniformly for every interacted target item.  "Non-
interacted" is judged against the user's whole training sequence, so the
sampler is constructed once per training run with the training sequences.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NegativeSampler"]


class NegativeSampler:
    """Sample negative items per (user, positive item) pair.

    Parameters
    ----------
    num_items:
        Number of real items; samples are drawn from ``[0, num_items)``.
    user_sequences:
        Per-user training sequences; sampled negatives avoid the user's
        interacted items.
    rng:
        Random generator (pass the trainer's generator for reproducibility).
    max_resample:
        How many times a colliding sample is re-drawn before being accepted
        anyway; guards against pathological users who interacted with
        nearly every item.
    """

    def __init__(self, num_items: int, user_sequences: list[list[int]],
                 rng: np.random.Generator | None = None, max_resample: int = 20):
        if num_items < 1:
            raise ValueError("num_items must be positive")
        if max_resample < 1:
            raise ValueError("max_resample must be positive")
        self.num_items = num_items
        self.rng = rng or np.random.default_rng()
        self.max_resample = max_resample
        self._seen = [set(seq) for seq in user_sequences]

    def seen_items(self, user: int) -> set[int]:
        """The items the sampler avoids for ``user``."""
        if 0 <= user < len(self._seen):
            return self._seen[user]
        return set()

    def sample(self, users: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        """Sample negatives of ``shape`` where ``shape[0] == len(users)``.

        Each row of the output corresponds to the user in the same row of
        ``users``; every entry is an item the user has not interacted with
        (best effort, see ``max_resample``).
        """
        users = np.asarray(users, dtype=np.int64)
        if shape[0] != len(users):
            raise ValueError("shape[0] must equal the number of users")
        negatives = self.rng.integers(0, self.num_items, size=shape)
        for row, user in enumerate(users):
            seen = self.seen_items(int(user))
            if not seen:
                continue
            row_values = negatives[row].reshape(-1)
            for position, value in enumerate(row_values):
                attempts = 0
                while value in seen and attempts < self.max_resample:
                    value = int(self.rng.integers(0, self.num_items))
                    attempts += 1
                row_values[position] = value
            negatives[row] = row_values.reshape(negatives[row].shape)
        return negatives
