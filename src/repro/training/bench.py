"""Training throughput harness: fast path vs legacy path.

The serving engine gave request latency a benchmark artifact
(``BENCH_serving.json``); this module does the same for the other half of
the paper's runtime story (Table 14): epoch time of the BPR training
loop.  The same synthetic HAM workload is trained twice —

* **legacy** — the seed-repo substrate: ``float64`` everywhere, dense
  ``(num_items, d)`` embedding-gradient scatters, per-element Python
  rejection sampling, per-lookup index validation;
* **fast** — the overhauled hot path: ``float32`` compute dtype, indexed
  (sparse) embedding gradients with row-wise Adam, vectorized negative
  sampling, one-time index validation

— and the p50 epoch times are compared.  :func:`write_training_report`
persists the result as ``benchmarks/results/BENCH_training.json``, the
artifact asserted by ``benchmarks/test_training_throughput.py`` and
produced by the ``repro-ham bench-train`` CLI command.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.bench_schema import write_bench_report

from repro.models.nonparametric import NonParametricRecommender
from repro.models.registry import create_model
from repro.training.config import TrainingConfig
from repro.training.trainer import Trainer

__all__ = [
    "EpochStats",
    "TrainingBenchReport",
    "FAST_PATH_OVERRIDES",
    "LEGACY_PATH_OVERRIDES",
    "synthetic_training_histories",
    "run_training_benchmark",
    "write_training_report",
]

#: TrainingConfig overrides selecting the overhauled hot path.
FAST_PATH_OVERRIDES = dict(
    dtype="float32",
    sparse_embedding_grad=True,
    vectorized_sampling=True,
    validate_indices=False,
    fused_scoring=True,
)

#: TrainingConfig overrides reproducing the seed-repo substrate.
LEGACY_PATH_OVERRIDES = dict(
    dtype="float64",
    sparse_embedding_grad=False,
    vectorized_sampling=False,
    validate_indices=True,
    fused_scoring=False,
)


@dataclass(frozen=True)
class EpochStats:
    """Epoch-time distribution of one training path."""

    epochs: int
    p50_s: float
    mean_s: float
    total_s: float
    samples_per_sec: float
    final_loss: float

    @staticmethod
    def from_epoch_seconds(epoch_seconds: list[float], num_instances: int,
                           final_loss: float) -> "EpochStats":
        if not epoch_seconds:
            raise ValueError("no timed epochs recorded")
        values = np.asarray(epoch_seconds, dtype=np.float64)
        p50 = float(np.percentile(values, 50))
        return EpochStats(
            epochs=len(epoch_seconds),
            p50_s=p50,
            mean_s=float(values.mean()),
            total_s=float(values.sum()),
            samples_per_sec=float(num_instances / p50) if p50 > 0 else float("inf"),
            final_loss=final_loss,
        )


@dataclass(frozen=True)
class TrainingBenchReport:
    """Fast-vs-legacy training comparison for one model/workload."""

    model_name: str
    num_users: int
    num_items: int
    num_instances: int
    batch_size: int
    epochs: int
    fast: EpochStats
    legacy: EpochStats
    #: Median epoch-time ratio (legacy p50 / fast p50); the median keeps
    #: scheduler/GC outliers from dominating the comparison.
    speedup: float

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"{self.model_name} on {self.num_instances} instances "
            f"({self.num_users} users x {self.num_items} items, "
            f"batch {self.batch_size}): "
            f"fast p50 {self.fast.p50_s:.3f} s/epoch "
            f"({self.fast.samples_per_sec:.0f} samples/s) "
            f"vs legacy p50 {self.legacy.p50_s:.3f} s/epoch "
            f"({self.legacy.samples_per_sec:.0f} samples/s) "
            f"-> {self.speedup:.1f}x"
        )


def synthetic_training_histories(num_users: int, num_items: int,
                                 max_history: int, seed: int = 0) -> list[list[int]]:
    """Random per-user histories shaped like the synthetic HAM workload."""
    rng = np.random.default_rng(seed)
    return [
        rng.integers(0, num_items, size=int(rng.integers(max_history // 2, max_history))).tolist()
        for _ in range(num_users)
    ]


def _timed_fit(model_name: str, histories: list[list[int]], num_users: int,
               num_items: int, config: TrainingConfig, seed: int,
               model_kwargs: dict) -> tuple[EpochStats, int]:
    model = create_model(model_name, num_users, num_items,
                         rng=np.random.default_rng(seed), **model_kwargs)
    if isinstance(model, NonParametricRecommender):
        raise ValueError(
            f"{model_name} is count-based: it has no BPR training loop to "
            "benchmark (choose a gradient-based method)"
        )
    result = Trainer(model, config).fit(histories)
    stats = EpochStats.from_epoch_seconds(result.epoch_seconds, result.num_instances,
                                          result.final_loss)
    return stats, result.num_instances


def run_training_benchmark(num_users: int = 96, num_items: int = 8000,
                           max_history: int = 60, epochs: int = 3,
                           batch_size: int = 256, model_name: str = "HAMm",
                           seed: int = 0,
                           model_kwargs: dict | None = None) -> TrainingBenchReport:
    """Train the same synthetic workload on both paths and compare p50 epochs.

    Both paths see identical histories, identical model initialization
    (same construction seed) and the same epoch budget; only the
    substrate flags of :class:`~repro.training.config.TrainingConfig`
    differ.  The default catalogue of 8000 items is *small* next to the
    paper's datasets (18k-170k items); the dense path's per-batch
    ``(num_items, d)`` gradient scatters and full-table Adam updates
    scale with the catalogue, so the measured speedup grows with it.
    """
    if epochs < 1:
        raise ValueError("epochs must be positive")
    model_kwargs = dict(model_kwargs or {})
    if model_name in ("POP", "ItemKNN", "MarkovChain"):
        # Count-based models take no embedding_dim; construction must
        # still succeed so the NonParametricRecommender check below can
        # explain why they cannot be benchmarked.
        model_kwargs.pop("embedding_dim", None)
    else:
        model_kwargs.setdefault("embedding_dim", 48)
    if model_name.startswith("HAM"):
        model_kwargs.setdefault("n_h", 10)
        model_kwargs.setdefault("n_l", 2)
    histories = synthetic_training_histories(num_users, num_items, max_history, seed=seed)

    base = TrainingConfig(num_epochs=epochs, batch_size=batch_size, seed=seed,
                          keep_best=False)
    fast_stats, num_instances = _timed_fit(
        model_name, histories, num_users, num_items,
        base.with_overrides(**FAST_PATH_OVERRIDES), seed, model_kwargs)
    legacy_stats, _ = _timed_fit(
        model_name, histories, num_users, num_items,
        base.with_overrides(**LEGACY_PATH_OVERRIDES), seed, model_kwargs)

    return TrainingBenchReport(
        model_name=model_name,
        num_users=num_users,
        num_items=num_items,
        num_instances=num_instances,
        batch_size=batch_size,
        epochs=epochs,
        fast=fast_stats,
        legacy=legacy_stats,
        speedup=legacy_stats.p50_s / fast_stats.p50_s
        if fast_stats.p50_s > 0 else float("inf"),
    )


def write_training_report(report: TrainingBenchReport, path) -> None:
    """Persist a report as the ``BENCH_training.json`` artifact.

    Uses the unified envelope of :mod:`repro.bench_schema` (timestamp,
    host info, appended headline history) shared by every ``BENCH_*``
    artifact.
    """
    write_bench_report(path, "training", report.as_dict(), headline={
        "speedup": report.speedup,
        "fast_p50_s": report.fast.p50_s,
        "legacy_p50_s": report.legacy.p50_s,
    })
