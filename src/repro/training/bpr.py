"""Bayesian Personalized Ranking loss (paper Eq. 9).

``L = - sum log sigma(r_positive - r_negative)`` over every (positive,
sampled negative) pair, averaged over the real (non-padded) target
positions of the batch.  The L2 regularization term of Eq. 9 is applied by
the optimizer as weight decay rather than inside the loss.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor, functional as F

__all__ = ["bpr_loss"]


def bpr_loss(positive_scores: Tensor, negative_scores: Tensor,
             mask: np.ndarray | None = None) -> Tensor:
    """BPR loss over a batch of score pairs.

    Parameters
    ----------
    positive_scores, negative_scores:
        Tensors of identical shape ``(B, n_p)`` holding the model scores of
        the truly interacted items and of the sampled negative items.
    mask:
        Optional boolean array of the same shape; False marks padded target
        positions that must not contribute to the loss.

    Returns
    -------
    Scalar tensor — the mean of ``-log sigma(pos - neg)`` over real pairs.
    """
    if positive_scores.shape != negative_scores.shape:
        raise ValueError("positive and negative scores must have the same shape")
    difference = positive_scores - negative_scores
    losses = -F.logsigmoid(difference)
    if mask is None:
        return losses.mean()
    mask = np.asarray(mask).astype(losses.dtype)
    if mask.shape != losses.shape:
        raise ValueError("mask shape must match the score shape")
    count = max(mask.sum(), 1.0)
    return (losses * Tensor(mask)).sum() * (1.0 / count)
