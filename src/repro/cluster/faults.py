"""Deterministic network fault injection for the cluster tier.

The single-host chaos harness (:mod:`repro.parallel.faults`) makes
worker crashes reproducible configuration; a socket can additionally
fail in ways a fork never does — connections drop mid-frame, peers stall
without dying, partitions refuse new connections, bytes arrive garbled.
This module extends the same idiom to exactly those failures:

* :class:`NodeFault` describes what goes wrong on one node's
  connections — drop the connection upon receiving its N-th request,
  stall (accept the request, never answer), corrupt the reply frame,
  refuse new connections outright (a partition), or delay every reply
  with seeded jitter.
* :class:`NetFaultPlan` bundles per-node faults with a seed.  Like
  :class:`~repro.parallel.faults.FaultPlan` it is a picklable frozen
  dataclass, so it rides into spawned node processes unchanged.
* :class:`NetFaultInjector` executes a plan for one ``(node,
  connection)`` pair inside :class:`~repro.cluster.node.EngineNode`'s
  per-connection loop, counting requests and firing the configured
  fault at the exact deterministic point.

Randomized decisions (delay jitter) draw from the shared
:func:`~repro.parallel.faults.fault_rng` stream family with a dedicated
stream tag, so network schedules are reproducible from the plan seed
and never collide with shard-worker schedules built from the same seed.

By default a terminal fault (drop/stall/garble) fires only on the
node's **first** connection, so reconnect recovers cleanly — the mirror
of ``every_incarnation=False``; ``every_connection=True`` makes the
fault permanent, which is how the all-replicas-down path is driven.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.faults import fault_rng

__all__ = ["NodeFault", "NetFaultPlan", "NetFaultInjector"]

#: Stream tag separating network fault schedules from shard-worker
#: schedules seeded from the same plan seed.
_NET_STREAM = 0x4E45

#: What a garbled reply looks like on the wire: a frame whose magic is
#: wrong, so the receiver fails fast with ``ProtocolError`` instead of
#: misparsing the payload.
GARBLED_REPLY = b"\x00\x00\x00\x08XX\x01\x00\x00\x00\x00\x00"


@dataclass(frozen=True)
class NodeFault:
    """The fault configuration of one node's connections (picklable).

    Parameters
    ----------
    node:
        Index of the node this fault applies to (the node's
        ``node_index``, assigned at construction).
    drop_connection_at_request:
        Close the connection upon receiving its N-th request (1-based),
        after the request is consumed but before any reply — the
        TCP-reset shape of a worker SIGKILL.  ``None`` disables.
    stall_at_request:
        Upon receiving the N-th request, stop replying on this
        connection while keeping it open — a wedged peer only client
        deadlines can unblock.  ``None`` disables.
    garble_reply_at_request:
        Reply to the N-th request with a corrupt frame (wrong magic)
        instead of the real result, then close — the bit-rot /
        truncation shape the framing layer must detect.  ``None``
        disables.
    refuse_connections:
        Refuse (immediately close) new connections to this node — a
        network partition as seen by clients.  Existing connections are
        unaffected, which is exactly how real partitions bisect load.
    delay_response_s:
        Sleep this long before every reply (a slow link or peer).
    delay_jitter_s:
        Seeded uniform ``[0, jitter)`` addition to each delay.
    every_connection:
        Apply the terminal faults (drop/stall/garble) on every
        connection instead of only connection 0, making reconnect
        futile.  Delays and ``refuse_connections`` always apply to every
        connection.
    """

    node: int
    drop_connection_at_request: int | None = None
    stall_at_request: int | None = None
    garble_reply_at_request: int | None = None
    refuse_connections: bool = False
    delay_response_s: float = 0.0
    delay_jitter_s: float = 0.0
    every_connection: bool = False


@dataclass(frozen=True)
class NetFaultPlan:
    """A seedable, picklable set of per-node network faults.

    Pass a plan to :class:`~repro.cluster.node.EngineNode`
    (``fault_plan=...``) and every accepted connection gets a
    :class:`NetFaultInjector` for the node's index.  Nodes without a
    configured fault serve normally.
    """

    faults: tuple[NodeFault, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        nodes = [fault.node for fault in self.faults]
        if len(nodes) != len(set(nodes)):
            raise ValueError("at most one NodeFault per node")

    def for_node(self, node: int) -> NodeFault | None:
        """The fault configured for ``node``, or ``None``."""
        for fault in self.faults:
            if fault.node == node:
                return fault
        return None

    # ------------------------------------------------------------------ #
    # Convenience constructors for the common single-fault plans
    # ------------------------------------------------------------------ #
    @classmethod
    def drop_connection(cls, node: int, at_request: int = 1,
                        every_connection: bool = False,
                        seed: int = 0) -> "NetFaultPlan":
        """Plan that drops ``node``'s connection at its N-th request."""
        return cls(faults=(NodeFault(node=node,
                                     drop_connection_at_request=at_request,
                                     every_connection=every_connection),),
                   seed=seed)

    @classmethod
    def stall_node(cls, node: int, at_request: int = 1,
                   every_connection: bool = False,
                   seed: int = 0) -> "NetFaultPlan":
        """Plan that wedges ``node``'s connection at its N-th request."""
        return cls(faults=(NodeFault(node=node, stall_at_request=at_request,
                                     every_connection=every_connection),),
                   seed=seed)

    @classmethod
    def garble_reply(cls, node: int, at_request: int = 1,
                     every_connection: bool = False,
                     seed: int = 0) -> "NetFaultPlan":
        """Plan that corrupts ``node``'s reply to its N-th request."""
        return cls(faults=(NodeFault(node=node,
                                     garble_reply_at_request=at_request,
                                     every_connection=every_connection),),
                   seed=seed)

    @classmethod
    def partition(cls, node: int, seed: int = 0) -> "NetFaultPlan":
        """Plan that refuses every new connection to ``node``."""
        return cls(faults=(NodeFault(node=node, refuse_connections=True),),
                   seed=seed)

    @classmethod
    def delay_node(cls, node: int, delay_s: float, jitter_s: float = 0.0,
                   seed: int = 0) -> "NetFaultPlan":
        """Plan that delays every reply of ``node`` by ``delay_s``."""
        return cls(faults=(NodeFault(node=node, delay_response_s=delay_s,
                                     delay_jitter_s=jitter_s),),
                   seed=seed)


class NetFaultInjector:
    """Per-connection executor of a :class:`NetFaultPlan`.

    Built by :class:`~repro.cluster.node.EngineNode` for each accepted
    connection; :meth:`on_request` is called after a request frame is
    decoded, :meth:`reply_action` just before its reply frame is sent.
    Both are no-ops for nodes the plan does not target.
    """

    #: :meth:`reply_action` verdicts.
    REPLY = "reply"
    GARBLE = "garble"

    def __init__(self, plan: NetFaultPlan, node: int, connection: int = 0):
        self._fault = plan.for_node(node)
        self._connection = connection
        self._requests = 0
        # Seeded per (plan seed, net stream, node, connection):
        # reproducible for a fixed plan, distinct across reconnects only
        # through the connection component, and never colliding with
        # shard-worker streams built from the same seed.
        self._rng = fault_rng(plan.seed, _NET_STREAM, node, connection)

    @property
    def active(self) -> bool:
        """Whether this node has a configured fault."""
        return self._fault is not None

    @property
    def refuses_connections(self) -> bool:
        """Whether new connections to this node are partitioned away."""
        return self._fault is not None and self._fault.refuse_connections

    def _terminal_faults_apply(self) -> bool:
        return self._fault.every_connection or self._connection == 0

    def on_request(self) -> str | None:
        """Receipt-time verdict for the next request.

        Returns ``"drop"`` (close the connection now), ``"stall"``
        (never reply on this connection) or ``None`` (serve normally).
        """
        if self._fault is None:
            return None
        self._requests += 1
        if not self._terminal_faults_apply():
            return None
        fault = self._fault
        if (fault.drop_connection_at_request is not None
                and self._requests >= fault.drop_connection_at_request):
            return "drop"
        if (fault.stall_at_request is not None
                and self._requests >= fault.stall_at_request):
            return "stall"
        return None

    def reply_action(self) -> tuple[str, float]:
        """Reply-time verdict: ``(action, delay_seconds)``.

        ``action`` is :data:`REPLY` (send the real frame) or
        :data:`GARBLE` (send :data:`GARBLED_REPLY` and close); the delay
        is applied before either.
        """
        if self._fault is None:
            return self.REPLY, 0.0
        delay = self._fault.delay_response_s
        if self._fault.delay_jitter_s > 0.0:
            delay += float(self._rng.uniform(0.0, self._fault.delay_jitter_s))
        fault = self._fault
        if (self._terminal_faults_apply()
                and fault.garble_reply_at_request is not None
                and self._requests >= fault.garble_reply_at_request):
            return self.GARBLE, delay
        return self.REPLY, delay
