"""Cluster harness: networked overhead and failover recovery time.

The resilience bench (``BENCH_resilience.json``) measures the failure
path of the *in-process* sharded substrate; this harness measures the
same two questions one tier up, for the networked cluster:

* **networked overhead** — full-catalogue ``top_k`` sweeps through
  ``EngineNode`` + ``ClusterRouter`` (real processes, Unix sockets,
  protocol framing) versus the in-process sharded engine on the same
  workload: what the wire costs;
* **failover recovery** — the primary node is SIGKILLed mid-stream
  (live router connections die with it) after a round of replicated
  ``observe()`` traffic; the harness records how much longer the
  interrupted sweep took than the healthy cluster p50, that **zero
  requests failed** (the replica answered every one within the
  deadline), and that every post-failover answer — observed users
  included — is **bit-identical** to the serial engine.

Every scenario runs on a single core (recovery correctness, unlike
speedup, does not need real parallelism).  :func:`write_cluster_report`
persists the result as ``benchmarks/results/BENCH_cluster.json`` under
the unified :mod:`repro.bench_schema` envelope; ``repro-ham
bench-cluster`` is the CLI entry point and
``benchmarks/test_cluster_failover.py`` regenerates and guards the
artifact (``chaos`` tier, see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.bench_schema import write_bench_report
from repro.cluster.node import spawn_node
from repro.cluster.router import ClusterRouter
from repro.models.registry import create_model
from repro.parallel.sharded import ShardedScoringEngine
from repro.serving.engine import ScoringEngine
from repro.training.bench import synthetic_training_histories

__all__ = ["ClusterBenchReport", "run_cluster_benchmark",
           "write_cluster_report"]


@dataclass(frozen=True)
class ClusterBenchReport:
    """Networked-overhead / failover measurements of one workload."""

    model_name: str
    num_users: int
    num_items: int
    k: int
    n_nodes: int
    replication: int
    cpu_count: int
    repeats: int
    #: In-process sharded p50 sweep seconds (the overhead reference).
    sharded_p50_s: float
    #: Healthy-cluster p50 sweep seconds over Unix sockets.
    cluster_p50_s: float
    cluster_users_per_sec: float
    #: ``cluster_p50_s / sharded_p50_s`` — what the wire costs.
    networked_overhead_x: float
    #: Healthy-cluster sweeps compared bit-for-bit with the serial engine.
    pre_kill_bit_identical: bool
    #: Replicated ``observe()`` calls issued before the kill.
    observes_replicated: int
    #: Wall seconds of the sweep during which the primary was SIGKILLed
    #: (includes dead-connection detection and replica failover).
    killed_sweep_s: float
    #: ``killed_sweep_s - cluster_p50_s`` — what the crash cost.
    failover_recovery_s: float
    #: No request raised during or after the kill (replica answered all).
    zero_failed_requests: bool
    #: Every answer after the kill — observed users included — matches
    #: the serial engine bit-for-bit.
    post_failover_bit_identical: bool
    post_failover_p50_s: float
    #: Router counters after the scenario.
    failovers: int
    retry_rounds: int
    stale_replies_dropped: int

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"{self.model_name} cluster over {self.num_users} users x "
            f"{self.num_items} items ({self.n_nodes} nodes x "
            f"{self.replication} replicas, {self.cpu_count} cores): "
            f"sharded p50 {self.sharded_p50_s * 1e3:.1f} ms, cluster p50 "
            f"{self.cluster_p50_s * 1e3:.1f} ms "
            f"({self.networked_overhead_x:.2f}x wire overhead); SIGKILL "
            f"primary mid-stream -> recovered in "
            f"+{self.failover_recovery_s * 1e3:.1f} ms "
            f"({self.failovers} failover(s), zero failed requests: "
            f"{self.zero_failed_requests}, post-failover bit-identical: "
            f"{self.post_failover_bit_identical}, post-failover p50 "
            f"{self.post_failover_p50_s * 1e3:.1f} ms)"
        )


def _timed_sweeps(engine, users: np.ndarray, k: int, repeats: int) -> list[float]:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        engine.top_k(users, k)
        times.append(time.perf_counter() - start)
    return times


def run_cluster_benchmark(num_users: int = 400, num_items: int = 2000,
                          max_history: int = 60, k: int = 10,
                          n_nodes: int = 2, repeats: int = 5,
                          model_name: str = "HAMm", seed: int = 0,
                          embedding_dim: int = 32,
                          request_timeout_s: float = 60.0,
                          n_observes: int = 8) -> ClusterBenchReport:
    """Measure wire overhead and kill-the-primary failover recovery.

    Uses the synthetic HAM workload of the other benches.  Three serving
    stacks are built over the same model/histories: the serial engine
    (parity reference), an in-process sharded engine (overhead
    baseline), and an ``n_nodes``-process cluster over Unix sockets.
    After a round of replicated ``observe()`` traffic, node 0 — primary
    for roughly half the ranges — is SIGKILLed and the interrupted sweep
    is timed; every answer is checked bit-for-bit against the serial
    engine.
    """
    if n_nodes < 2:
        raise ValueError("n_nodes must be at least 2 to have a node to kill")
    if repeats < 1:
        raise ValueError("repeats must be positive")

    model_kwargs = dict(embedding_dim=embedding_dim)
    if model_name.startswith("HAM"):
        model_kwargs.update(n_h=10, n_l=2)
    model = create_model(model_name, num_users, num_items,
                         rng=np.random.default_rng(seed), **model_kwargs)
    histories = synthetic_training_histories(num_users, num_items, max_history,
                                             seed=seed)
    users = np.arange(num_users, dtype=np.int64)
    rng = np.random.default_rng(seed + 1)

    serial = ScoringEngine(model, histories, exclude_seen=True, precompute=True)
    reference = serial.top_k(users, k)

    # ---- in-process sharded baseline ------------------------------------ #
    with ShardedScoringEngine(model, histories, n_workers=2,
                              exclude_seen=True, precompute=True,
                              request_timeout_s=request_timeout_s) as engine:
        engine.top_k(users, k)  # warm-up, untimed
        sharded_times = _timed_sweeps(engine, users, k, repeats)
    sharded_p50 = float(np.percentile(np.asarray(sharded_times), 50))

    # ---- networked cluster ---------------------------------------------- #
    replication = min(2, n_nodes)
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tmp:
        handles = [
            spawn_node(model, histories, bind=f"unix:{tmp}/node{i}.sock",
                       exclude_seen=True, node_index=i)
            for i in range(n_nodes)
        ]
        router = ClusterRouter([handle.address for handle in handles],
                               replication=replication,
                               request_timeout_s=request_timeout_s,
                               heartbeat_interval_s=0.5)
        try:
            router.top_k(users, k)  # warm-up, untimed
            cluster_times = _timed_sweeps(router, users, k, repeats)
            cluster_p50 = float(np.percentile(np.asarray(cluster_times), 50))
            pre_kill = router.top_k(users, k)
            pre_kill_identical = bool(np.array_equal(pre_kill, reference))

            # Replicated observe traffic: failover answers must include it.
            for _ in range(n_observes):
                user = int(rng.integers(0, num_users))
                item = int(rng.integers(0, num_items))
                router.observe(user, item)
                serial.observe(user, item)
            reference_after = serial.top_k(users, k)

            # ---- SIGKILL the primary mid-stream ------------------------- #
            handles[0].kill()
            zero_failed = True
            killed_ranked = None
            start = time.perf_counter()
            try:
                killed_ranked = router.top_k(users, k)
            except Exception:
                zero_failed = False
            killed_sweep_s = time.perf_counter() - start

            post_times = _timed_sweeps(router, users, k, repeats)
            post_ranked = router.top_k(users, k)
            post_identical = bool(
                killed_ranked is not None
                and np.array_equal(killed_ranked, reference_after)
                and np.array_equal(post_ranked, reference_after))
            post_p50 = float(np.percentile(np.asarray(post_times), 50))
            stats = router.stats()
        finally:
            router.close()
            for handle in handles:
                handle.close()

    return ClusterBenchReport(
        model_name=model_name,
        num_users=num_users,
        num_items=num_items,
        k=k,
        n_nodes=n_nodes,
        replication=replication,
        cpu_count=os.cpu_count() or 1,
        repeats=repeats,
        sharded_p50_s=sharded_p50,
        cluster_p50_s=cluster_p50,
        cluster_users_per_sec=float(num_users / cluster_p50)
        if cluster_p50 > 0 else float("inf"),
        networked_overhead_x=float(cluster_p50 / sharded_p50)
        if sharded_p50 > 0 else float("inf"),
        pre_kill_bit_identical=pre_kill_identical,
        observes_replicated=n_observes,
        killed_sweep_s=killed_sweep_s,
        failover_recovery_s=killed_sweep_s - cluster_p50,
        zero_failed_requests=zero_failed,
        post_failover_bit_identical=post_identical,
        post_failover_p50_s=post_p50,
        failovers=int(stats["failovers"]),
        retry_rounds=int(stats["retry_rounds"]),
        stale_replies_dropped=int(stats["stale_replies_dropped"]),
    )


def write_cluster_report(report: ClusterBenchReport, path) -> None:
    """Persist a report as the ``BENCH_cluster.json`` artifact."""
    write_bench_report(path, "cluster", report.as_dict(), headline={
        "networked_overhead_x": report.networked_overhead_x,
        "failover_recovery_s": report.failover_recovery_s,
        "zero_failed_requests": report.zero_failed_requests,
        "post_failover_bit_identical": report.post_failover_bit_identical,
        "n_nodes": report.n_nodes,
        "cpu_count": report.cpu_count,
    })
