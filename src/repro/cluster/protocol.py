"""Length-prefixed binary framing of the cluster serving protocol.

The in-process sharded engine already speaks a message protocol — task
queues carry ``(request_id, method, users, kwargs)`` tuples, result
queues carry ``(request_id, payload, error)`` — but both ends share an
address space, so "serialization" is a pickle inside one host.  This
module takes the promised last step and puts the same messages on a
byte stream, so an engine and its callers can live on different
machines.

A **frame** is one message::

    +----------------+---------+---------+------------+----------------+
    | payload length | magic   | version | header len | header (JSON)  |
    | 4 bytes BE     | 2 bytes | 1 byte  | 4 bytes BE | UTF-8          |
    +----------------+---------+---------+------------+----------------+
    | array payloads, back to back, in header order                    |
    +------------------------------------------------------------------+

The header carries the message ``kind`` (the RPC verb), a JSON ``meta``
dict of scalar parameters, and the name/dtype/shape of each appended
array.  Arrays travel as raw C-contiguous bytes — a ``(B, num_items)``
score matrix costs exactly its ``nbytes``, with no pickle or base64
overhead — and are rebuilt bit-for-bit on the far side, which is what
keeps cluster answers bit-identical to the serial engine.

Defensive properties the chaos tier leans on:

* every read is bounded by a socket timeout (a slow or stalled peer
  surfaces as ``socket.timeout``/``TimeoutError``, never a hang);
* a short read (peer died mid-frame) raises :class:`ConnectionClosed`;
* a corrupt prefix — wrong magic, wrong version, absurd length, header
  that does not parse — raises :class:`ProtocolError` *before* any
  large allocation, so one garbled frame can poison at most its own
  connection.

Snapshot hand-off
-----------------
:func:`serialize_engine_snapshot` /
:func:`engine_from_snapshot_payload` move a complete scoring snapshot
(model parameters via pickle, padded inputs, CSR seen arrays and the
frozen candidate table) through one frame, so a fresh node can be
bootstrapped from a running peer (``EngineNode.from_peer``) without
touching the original checkpoint.  Same-host nodes skip the copy
entirely: :func:`engine_from_arena` attaches a published
:class:`~repro.parallel.shm.SharedArena` by name for a zero-copy
engine, exactly like the in-process shard workers.

The pickle inside a snapshot frame means snapshot hand-off (like the
rest of this protocol) is for **trusted cluster links only** — the same
trust the ``multiprocessing`` substrate already assumes.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct

import numpy as np

from repro.data.seen import SeenIndex
from repro.data.windows import pad_histories, pad_id_for
from repro.models.base import FrozenScorer, SequentialRecommender
from repro.parallel.shm import ArenaLayout, SharedArena
from repro.retrieval.index import ANN_PREFIX, ANNIndex, RetrievalConfig
from repro.serving.engine import ScoringEngine

__all__ = [
    "ProtocolError",
    "ConnectionClosed",
    "Frame",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "serialize_engine_snapshot",
    "serialize_live_engine",
    "engine_from_snapshot_payload",
    "engine_from_arena",
    "MAX_FRAME_BYTES",
]

#: First bytes of every payload; a peer speaking anything else (or a
#: frame corrupted in flight) is detected here.
MAGIC = b"RH"
VERSION = 1

#: Upper bound on one frame (1 GiB).  A garbled length prefix must not
#: talk the receiver into allocating unbounded memory.
MAX_FRAME_BYTES = 1 << 30

_LENGTH = struct.Struct("!I")
_PREFIX = struct.Struct("!2sBI")  # magic, version, header length


class ProtocolError(RuntimeError):
    """The byte stream does not parse as a protocol frame.

    Raised on a wrong magic/version, an implausible length, or a header
    that fails to decode — the signature of a corrupt or garbled frame.
    The connection that produced it must be torn down (the stream offset
    is no longer trustworthy); other connections are unaffected.
    """


class ConnectionClosed(ConnectionError):
    """The peer closed (or died on) the connection mid-frame or between
    frames.  Routers treat it as a failover trigger, servers as a normal
    client departure."""


class Frame:
    """One decoded protocol message: ``kind`` + ``meta`` + named arrays."""

    __slots__ = ("kind", "meta", "arrays")

    def __init__(self, kind: str, meta: dict | None = None,
                 arrays: dict[str, np.ndarray] | None = None):
        self.kind = kind
        self.meta = meta or {}
        self.arrays = arrays or {}

    def array(self, name: str) -> np.ndarray:
        """The named array payload (raises ``KeyError`` when absent)."""
        return self.arrays[name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Frame(kind={self.kind!r}, meta={self.meta!r}, "
                f"arrays={list(self.arrays)})")


def encode_frame(kind: str, meta: dict | None = None,
                 arrays: dict[str, np.ndarray] | None = None) -> bytes:
    """Serialize one message into its on-wire bytes (prefix included)."""
    arrays = arrays or {}
    contiguous = {name: np.ascontiguousarray(value)
                  for name, value in arrays.items()}
    header = json.dumps({
        "kind": kind,
        "meta": meta or {},
        "arrays": [
            {"name": name, "dtype": value.dtype.str,
             "shape": list(value.shape)}
            for name, value in contiguous.items()
        ],
    }, sort_keys=True).encode("utf-8")
    payload = bytearray()
    payload += _PREFIX.pack(MAGIC, VERSION, len(header))
    payload += header
    for value in contiguous.values():
        payload += value.tobytes()
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {len(payload)} bytes exceeds MAX_FRAME_BYTES")
    return _LENGTH.pack(len(payload)) + bytes(payload)


def send_frame(sock: socket.socket, kind: str, meta: dict | None = None,
               arrays: dict[str, np.ndarray] | None = None) -> None:
    """Encode and write one frame; partial writes are completed or raise."""
    try:
        sock.sendall(encode_frame(kind, meta, arrays))
    except (BrokenPipeError, ConnectionResetError) as error:
        raise ConnectionClosed(f"peer closed during send: {error}") from error


def _read_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`.

    Socket timeouts (``settimeout`` on ``sock``) propagate as
    ``TimeoutError`` — the caller's deadline machinery handles them.
    """
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(min(remaining, 1 << 20))
        except ConnectionResetError as error:
            raise ConnectionClosed(f"peer reset mid-frame: {error}") from error
        if not chunk:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {n} frame bytes unread")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Frame:
    """Read and decode one frame from ``sock``.

    Raises :class:`ConnectionClosed` on EOF / peer death,
    :class:`ProtocolError` on a garbled stream and ``TimeoutError`` when
    the socket's configured timeout expires first.
    """
    (length,) = _LENGTH.unpack(_read_exact(sock, _LENGTH.size))
    if length < _PREFIX.size or length > MAX_FRAME_BYTES:
        raise ProtocolError(f"implausible frame length {length}")
    payload = _read_exact(sock, length)
    magic, version, header_len = _PREFIX.unpack_from(payload, 0)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    header_end = _PREFIX.size + header_len
    if header_len <= 0 or header_end > length:
        raise ProtocolError(f"implausible header length {header_len}")
    try:
        header = json.loads(payload[_PREFIX.size:header_end].decode("utf-8"))
        kind = header["kind"]
        meta = header["meta"]
        specs = header["arrays"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as error:
        raise ProtocolError(f"unparseable frame header: {error}") from error
    arrays: dict[str, np.ndarray] = {}
    offset = header_end
    for spec in specs:
        try:
            dtype = np.dtype(spec["dtype"])
            shape = tuple(int(dim) for dim in spec["shape"])
            name = spec["name"]
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"bad array spec {spec!r}: {error}") from error
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        if offset + nbytes > length:
            raise ProtocolError(
                f"array {name!r} overruns the frame by "
                f"{offset + nbytes - length} bytes")
        # Copy out of the receive buffer: the returned arrays own their
        # memory (and stay writable) once the frame bytes are released.
        arrays[name] = np.frombuffer(
            payload, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)),
            offset=offset).reshape(shape).copy()
        offset += nbytes
    if offset != length:
        raise ProtocolError(f"{length - offset} trailing bytes after arrays")
    return Frame(kind, meta, arrays)


# ---------------------------------------------------------------------- #
# Snapshot hand-off
# ---------------------------------------------------------------------- #
def serialize_engine_snapshot(model: SequentialRecommender,
                              histories: list[list[int]],
                              exclude_seen: bool = True,
                              micro_batch_size: int = 1024,
                              ann_config: RetrievalConfig | None = None,
                              ) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` of a complete scoring snapshot, frame-ready.

    Materializes exactly the arrays the in-process sharded engine
    publishes into its :class:`~repro.parallel.shm.SharedArena` — padded
    inputs, CSR seen arrays, the frozen candidate table and bias — plus
    the pickled model (needed for the representation forward on the far
    side).  Feeding the result to :func:`engine_from_snapshot_payload`
    yields an engine that scores bit-identically to a local
    ``ScoringEngine(model, histories)``.

    ``ann_config`` additionally trains an ANN candidate index over the
    frozen table and ships it in the same frame (``ann_*`` arrays), so
    the far-side node serves ``top_k(mode="ann")`` without retraining.
    """
    model.eval()
    num_users = model.num_users
    pad_id = pad_id_for(model.num_items)
    inputs = pad_histories(histories, model.input_length, pad_id,
                           users=np.arange(num_users, dtype=np.int64))
    seen = SeenIndex.from_histories(histories[:num_users], model.num_items)
    meta = {
        "exclude_seen": bool(exclude_seen),
        "micro_batch_size": int(micro_batch_size),
        "has_frozen": False,
        "has_bias": False,
        "has_ann": False,
    }
    arrays: dict[str, np.ndarray] = {
        "model_pickle": np.frombuffer(
            pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8),
        "inputs": inputs,
        "seen_indptr": seen.indptr,
        "seen_items": seen.items,
    }
    try:
        frozen = model.freeze(copy=True)
    except NotImplementedError:
        frozen = None
    if frozen is not None:
        meta["has_frozen"] = True
        arrays["candidates"] = frozen.candidate_embeddings
        if frozen.item_bias is not None:
            meta["has_bias"] = True
            arrays["item_bias"] = frozen.item_bias
    if ann_config is not None:
        if frozen is None:
            raise ValueError(
                f"{type(model).__name__} has no candidate-embedding table; "
                "an ANN index cannot be built for this snapshot")
        index = ANNIndex.build(
            np.ascontiguousarray(
                frozen.candidate_embeddings[: model.num_items]),
            ann_config)
        meta["has_ann"] = True
        arrays.update(index.to_arrays())
    return meta, arrays


def serialize_live_engine(engine: ScoringEngine) -> tuple[dict, dict[str, np.ndarray]]:
    """``(meta, arrays)`` snapshot of a *running* serial engine.

    Where :func:`serialize_engine_snapshot` starts from model +
    histories (the checkpoint-owner hand-off), this starts from an
    engine that may already have absorbed ``observe()`` traffic: the
    shipped padded rows and seen arrays are the engine's *current*
    state, so a node bootstrapped from the result
    (``EngineNode.from_peer``) scores bit-identically to the donor at
    the moment of the snapshot.
    """
    model = engine.model
    num_users = engine.num_users
    if engine._inputs is not None:
        inputs = np.ascontiguousarray(engine._inputs)
    else:  # live-histories engine: materialize the padded rows now
        inputs = pad_histories(engine._histories, engine.input_length,
                               engine.pad_id,
                               users=np.arange(num_users, dtype=np.int64))
    if engine._seen_items is not None:
        lengths = [view.shape[0] for view in engine._seen_items]
        indptr = np.zeros(num_users + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        items = (np.concatenate(engine._seen_items)
                 if indptr[-1] else np.zeros(0, dtype=np.int64))
        items = items.astype(np.int64, copy=False)
    elif engine._histories is not None:
        seen = SeenIndex.from_histories(engine._histories[:num_users],
                                        engine.num_items)
        indptr, items = seen.indptr, seen.items
    else:
        raise RuntimeError(
            "engine was built without seen-item arrays or histories; "
            "its snapshot cannot serve masked requests")
    meta = {
        "exclude_seen": bool(engine.exclude_seen),
        "micro_batch_size": int(engine.micro_batch_size),
        "has_frozen": engine._frozen is not None,
        "has_bias": False,
        "has_ann": False,
    }
    arrays: dict[str, np.ndarray] = {
        "model_pickle": np.frombuffer(
            pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8),
        "inputs": inputs,
        "seen_indptr": indptr,
        "seen_items": items,
    }
    if engine._frozen is not None:
        arrays["candidates"] = engine._frozen.candidate_embeddings
        if engine._frozen.item_bias is not None:
            meta["has_bias"] = True
            arrays["item_bias"] = engine._frozen.item_bias
    if engine.ann_index is not None:
        # The donor's trained index travels with the snapshot, so the
        # recipient serves identical ANN candidates from frame one.
        meta["has_ann"] = True
        arrays.update(engine.ann_index.to_arrays())
    return meta, arrays


def _seen_views(indptr: np.ndarray, items: np.ndarray) -> list[np.ndarray]:
    """Per-user item views into CSR seen arrays (as the shard workers build)."""
    return [items[indptr[user]:indptr[user + 1]]
            for user in range(indptr.shape[0] - 1)]


def engine_from_snapshot_payload(meta: dict, arrays: dict[str, np.ndarray],
                                 ) -> ScoringEngine:
    """Rebuild an observable :class:`ScoringEngine` from a snapshot frame.

    The inverse of :func:`serialize_engine_snapshot`: unpickles the
    model, wires the shipped arrays through
    :meth:`ScoringEngine.from_snapshot` (the same constructor the shard
    workers use) and returns an engine whose answers are bit-identical
    to the origin's.
    """
    model = pickle.loads(arrays["model_pickle"].tobytes())
    model.eval()
    frozen = None
    if meta.get("has_frozen"):
        frozen = FrozenScorer(
            num_items=model.num_items,
            candidate_embeddings=arrays["candidates"],
            item_bias=arrays["item_bias"] if meta.get("has_bias") else None,
        )
    inputs = np.ascontiguousarray(arrays["inputs"])
    engine = ScoringEngine.from_snapshot(
        model,
        inputs=inputs,
        seen_items=_seen_views(arrays["seen_indptr"], arrays["seen_items"]),
        frozen=frozen,
        exclude_seen=bool(meta.get("exclude_seen", True)),
        micro_batch_size=int(meta.get("micro_batch_size", 1024)),
        observable=True,
    )
    if meta.get("has_ann"):
        engine.attach_ann_index(ANNIndex.from_arrays(arrays))
    return engine


def engine_from_arena(model: SequentialRecommender, layout: ArenaLayout,
                      exclude_seen: bool = True, micro_batch_size: int = 1024,
                      ) -> tuple[ScoringEngine, SharedArena]:
    """Zero-copy engine over a same-host published :class:`SharedArena`.

    A node co-located with the snapshot owner skips the serialization
    step entirely and attaches the already-published segment by name —
    the picklable ``layout`` is the only thing that crosses the process
    boundary, exactly as for the in-process shard workers.

    Returns ``(engine, arena)``; the caller owns the arena mapping and
    must ``close()`` it when the engine is retired.
    """
    arena = SharedArena.attach(layout)
    try:
        frozen = None
        if "candidates" in arena.keys():
            frozen = FrozenScorer(
                num_items=model.num_items,
                candidate_embeddings=arena.array("candidates"),
                item_bias=(arena.array("item_bias")
                           if "item_bias" in arena.keys() else None),
            )
        engine = ScoringEngine.from_snapshot(
            model,
            inputs=arena.array("inputs"),
            seen_items=_seen_views(arena.array("seen_indptr"),
                                   arena.array("seen_items")),
            frozen=frozen,
            exclude_seen=exclude_seen,
            micro_batch_size=micro_batch_size,
            observable=bool(arena.array("inputs").flags.writeable),
        )
        ann_keys = [key for key in arena.keys() if key.startswith(ANN_PREFIX)]
        if ann_keys:
            # Same zero-copy deal as the shard workers: read-only views
            # of the published index, identical candidates everywhere.
            engine.attach_ann_index(ANNIndex.from_arrays(
                {key: arena.array(key) for key in ann_keys}))
    except Exception:
        arena.close()
        raise
    return engine, arena
