"""Multi-node serving: the arena protocol over sockets.

``repro.cluster`` turns the in-process :mod:`repro.parallel` substrate
into a real serving cluster — the "one serialization step" the arena
protocol was always away from the network:

* :mod:`repro.cluster.protocol` — length-prefixed binary framing of
  the shard request/response messages, plus snapshot hand-off (remote
  bootstrap) and zero-copy same-host :class:`SharedArena` attach;
* :mod:`repro.cluster.node` — :class:`EngineNode`, a TCP/Unix-socket
  server around a scoring engine with health/stats verbs, graceful
  SIGTERM drain and per-connection timeouts;
* :mod:`repro.cluster.router` — :class:`ClusterRouter`, consistent
  user-hash routing over replica sets with heartbeats, failover,
  backoff reconnect, deadline-respecting retries and stale-result
  dropping;
* :mod:`repro.cluster.faults` — the deterministic network fault plans
  (drop/stall/partition/garbled-frame) behind the ``chaos_net`` tier.

The invariant carried over from the sharded engine: ``top_k`` through
``EngineNode`` + ``ClusterRouter`` is **bit-identical** to the serial
engine, including immediately after a primary is SIGKILLed mid-stream.
See ``docs/cluster.md``.
"""

from repro.cluster.faults import NetFaultInjector, NetFaultPlan, NodeFault
from repro.cluster.node import (
    EngineNode,
    NodeHandle,
    parse_address,
    request_reply,
    spawn_node,
)
from repro.cluster.protocol import (
    ConnectionClosed,
    Frame,
    ProtocolError,
    encode_frame,
    engine_from_arena,
    engine_from_snapshot_payload,
    recv_frame,
    send_frame,
    serialize_engine_snapshot,
    serialize_live_engine,
)
from repro.cluster.router import ClusterRouter, NodeUnavailable, user_range

__all__ = [
    "ClusterRouter",
    "ConnectionClosed",
    "EngineNode",
    "Frame",
    "NetFaultInjector",
    "NetFaultPlan",
    "NodeFault",
    "NodeHandle",
    "NodeUnavailable",
    "ProtocolError",
    "encode_frame",
    "engine_from_arena",
    "engine_from_snapshot_payload",
    "parse_address",
    "recv_frame",
    "request_reply",
    "send_frame",
    "serialize_engine_snapshot",
    "serialize_live_engine",
    "spawn_node",
    "user_range",
]
