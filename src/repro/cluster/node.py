"""`EngineNode`: a socket server wrapping a scoring engine.

One node is one scoring process reachable over TCP or a Unix socket: it
owns an engine (a serial :class:`~repro.serving.engine.ScoringEngine`
or a sharded :class:`~repro.parallel.sharded.ShardedScoringEngine`),
accepts protocol frames (:mod:`repro.cluster.protocol`), and answers
the full engine verb set — ``score_all`` / ``masked_scores`` /
``top_k`` / ``recommend_batch`` / ``observe`` — plus the operational
verbs a cluster needs: ``hello`` (capability + epoch exchange),
``ping`` (heartbeats), ``health`` / ``stats``, ``snapshot`` (bootstrap
a fresh node from this one, see :meth:`EngineNode.from_peer`) and
``drain``.

Robustness properties:

* **Per-connection timeouts** — a peer that stalls mid-frame is cut
  after ``read_timeout_s``; writes are bounded the same way.  Idle
  connections are fine: between frames the server polls cheaply and a
  quiet client costs nothing but its file descriptor.
* **Graceful drain** — ``drain()`` (also installed on ``SIGTERM`` by
  the CLI and :func:`spawn_node`) stops accepting, lets every in-flight
  request finish and reply, then closes.  In-flight work is never
  dropped on the floor; the router sees clean connection shutdowns.
* **Epoch fencing** — each node process mints a random epoch token at
  start-up and reports it in ``hello``/``ping``.  A router that sees
  the epoch change at a known address knows it is talking to a *fresh
  process* (crash + rejoin) whose engine state has reset, and replays
  its observe log from the beginning (see
  :class:`~repro.cluster.router.ClusterRouter`).
* **Fault injection** — a :class:`~repro.cluster.faults.NetFaultPlan`
  wires deterministic connection drops, stalls, garbled replies and
  partitions directly into the serve loop, so the chaos tier exercises
  real network failures without monkeypatching sockets.
* **Durable local journal (PR 9)** — with ``journal_dir=...``
  (``repro-ham serve-node --journal``) every applied ``observe`` is
  appended to a :class:`~repro.durability.wal.WriteAheadLog` *before*
  it touches the engine, and a restarting node replays the journal
  into its engine at boot — single-node deployments keep observed
  interactions across restarts without a router.  Observes that carry
  a router log sequence number are deduplicated against the highest
  sequence already applied (restored from the journal), so a router's
  at-least-once replay after its own restart never double-applies.

One engine, many connections: engine calls are serialized under a lock
(the engines are not thread-safe); concurrency across users comes from
the *cluster* (many nodes), not from threads inside one node — the same
single-writer discipline the sharded engine applies per shard.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import secrets
import signal
import socket
import struct
import threading
import time

import numpy as np

from repro.cluster.faults import GARBLED_REPLY, NetFaultInjector, NetFaultPlan
from repro.cluster.protocol import (
    ConnectionClosed,
    Frame,
    ProtocolError,
    engine_from_arena,
    engine_from_snapshot_payload,
    recv_frame,
    send_frame,
    serialize_live_engine,
)
from repro.serving.engine import ScoringEngine

__all__ = ["EngineNode", "NodeHandle", "spawn_node", "request_reply",
           "parse_address", "DEFAULT_READ_TIMEOUT_S"]

#: Default bound on one read/write on an active connection.
DEFAULT_READ_TIMEOUT_S = 30.0

#: Poll interval of idle waits (accept loop, between-frame waits, stall
#: loops) — how quickly drain/close are noticed.
_IDLE_POLL_S = 0.1


def parse_address(address: str) -> tuple[int, object]:
    """``(family, sockaddr)`` of an ``"host:port"`` / ``"unix:..."`` string.

    ``"unix:/tmp/node.sock"`` selects ``AF_UNIX``; anything else is
    split on the last ``:`` into a TCP host and port (port ``0`` asks
    the OS for a free port; the node reports the actual one).
    """
    if address.startswith("unix:"):
        return socket.AF_UNIX, address[len("unix:"):]
    host, sep, port = address.rpartition(":")
    if not sep:
        raise ValueError(f"address {address!r} is not host:port or unix:path")
    return socket.AF_INET, (host, int(port))


def _connect(address: str, timeout_s: float) -> socket.socket:
    """A connected, ``TCP_NODELAY`` socket to ``address``."""
    family, sockaddr = parse_address(address)
    sock = socket.socket(family, socket.SOCK_STREAM)
    try:
        sock.settimeout(timeout_s)
        sock.connect(sockaddr)
        if family == socket.AF_INET:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    except BaseException:
        sock.close()
        raise
    return sock


def request_reply(address: str, kind: str, meta: dict | None = None,
                  arrays: dict[str, np.ndarray] | None = None,
                  timeout_s: float = DEFAULT_READ_TIMEOUT_S) -> Frame:
    """One-shot RPC: connect, send one frame, return the reply frame.

    The simple client used by :meth:`EngineNode.from_peer`, the CLI
    probes and the tests; the router keeps persistent connections
    instead (see :mod:`repro.cluster.router`).  Raises the reply's
    mapped error for ``error`` frames.
    """
    sock = _connect(address, timeout_s)
    try:
        send_frame(sock, kind, meta, arrays)
        reply = recv_frame(sock)
    finally:
        sock.close()
    if reply.kind == "error":
        raise_reply_error(reply)
    return reply


def raise_reply_error(reply: Frame) -> None:
    """Re-raise an ``error`` reply frame as a local exception.

    ``TimeoutError`` survives the wire round-trip as ``TimeoutError``
    (deadline machinery upstream depends on the type); every other
    remote failure surfaces as ``RuntimeError`` with the remote type
    name in the message.
    """
    error_type = reply.meta.get("error_type", "RuntimeError")
    message = reply.meta.get("message", "remote error")
    if error_type == "TimeoutError":
        raise TimeoutError(message)
    raise RuntimeError(f"remote {error_type}: {message}")


class EngineNode:
    """Socket server exposing one scoring engine to the cluster.

    Parameters
    ----------
    engine:
        The engine to serve — a serial :class:`ScoringEngine` or a
        sharded one; anything with the engine duck-type works.
    bind:
        ``"host:port"`` (port 0 = OS-assigned) or ``"unix:/path"``.
        The actual address is :attr:`address` once constructed.
    read_timeout_s:
        Bound on one read/write on an active connection; a peer that
        stalls mid-frame is disconnected after this long.
    fault_plan:
        Optional :class:`NetFaultPlan` for deterministic network chaos.
    node_index:
        This node's index in the plan (and in the cluster's node list).
    own_engine:
        Close the engine when the node closes.
    journal_dir:
        Directory of the node's local observe journal (``repro-ham
        serve-node --journal``).  Existing journal records are replayed
        into the engine before the node starts serving; every later
        ``observe`` is journaled before it is applied.  ``None``
        (default) disables the journal.
    journal_fsync:
        Fsync policy of the journal WAL (``"always"`` / ``"interval"``
        / ``"never"``).
    """

    def __init__(self, engine, bind: str = "127.0.0.1:0", *,
                 read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
                 fault_plan: NetFaultPlan | None = None,
                 node_index: int = 0, own_engine: bool = False,
                 journal_dir: str | None = None,
                 journal_fsync: str = "always"):
        if read_timeout_s <= 0:
            raise ValueError("read_timeout_s must be positive")
        self.engine = engine
        self.read_timeout_s = float(read_timeout_s)
        self.node_index = int(node_index)
        self._plan = fault_plan
        self._own_engine = own_engine
        #: Fresh per process: lets routers detect crash + rejoin.
        self.epoch = secrets.token_hex(8)
        self._deadlines = bool(getattr(engine, "supports_deadlines", False))

        # Highest router log sequence number already applied (restored
        # from the journal); replayed observes at or below it are
        # acknowledged without re-applying.  -1 = none seen.
        self._applied_seq = -1
        self._observes_deduped = 0
        self._observes_journaled = 0
        self._journal = None
        if journal_dir is not None:
            from repro.durability.wal import WriteAheadLog
            self._journal = WriteAheadLog(journal_dir, fsync=journal_fsync)
            replayed = 0
            for _, payload in self._journal.replay():
                seq, user, item = struct.unpack("<qqq", payload)
                engine.observe(int(user), int(item))
                if seq > self._applied_seq:
                    self._applied_seq = seq
                replayed += 1
            self._journal_replayed = replayed
        else:
            self._journal_replayed = 0

        self._engine_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._draining = False
        self._closed = False
        self._unix_path: str | None = None
        self._connections = 0
        self._conn_threads: set[threading.Thread] = set()
        self._arena = None  # kept alive for from_arena() nodes

        self._requests_served = 0
        self._connections_refused = 0
        self._protocol_errors = 0
        self._faults_fired = {"drop": 0, "stall": 0, "garble": 0}

        family, sockaddr = parse_address(bind)
        listener = socket.socket(family, socket.SOCK_STREAM)
        try:
            if family == socket.AF_INET:
                listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            else:
                self._unix_path = sockaddr
                try:  # a crashed predecessor may have left the path behind
                    os.unlink(sockaddr)
                except OSError:
                    pass
            listener.bind(sockaddr)
            listener.listen(64)
            listener.settimeout(_IDLE_POLL_S)
        except BaseException:
            listener.close()
            raise
        self._listener = listener
        if family == socket.AF_INET:
            host, port = listener.getsockname()
            self.address = f"{host}:{port}"
        else:
            self.address = f"unix:{sockaddr}"
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"node-{self.node_index}-accept",
            daemon=True)
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # Alternate constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_peer(cls, peer_address: str, bind: str = "127.0.0.1:0",
                  timeout_s: float = DEFAULT_READ_TIMEOUT_S,
                  **node_kwargs) -> "EngineNode":
        """Bootstrap a node from a running peer's ``snapshot`` verb.

        Fetches the peer's complete scoring snapshot (current padded
        rows and seen arrays included, so acknowledged ``observe``
        traffic carries over) and serves it from a fresh engine — no
        checkpoint file required on this host.
        """
        reply = request_reply(peer_address, "snapshot", timeout_s=timeout_s)
        engine = engine_from_snapshot_payload(reply.meta, reply.arrays)
        return cls(engine, bind=bind, own_engine=True, **node_kwargs)

    @classmethod
    def from_arena(cls, model, layout, bind: str = "127.0.0.1:0",
                   exclude_seen: bool = True, micro_batch_size: int = 1024,
                   **node_kwargs) -> "EngineNode":
        """Zero-copy node over a same-host published ``SharedArena``.

        Co-located nodes skip snapshot serialization entirely and attach
        the publisher's shared segment by name (the picklable ``layout``
        is the hand-off token), exactly like in-process shard workers.
        """
        engine, arena = engine_from_arena(
            model, layout, exclude_seen=exclude_seen,
            micro_batch_size=micro_batch_size)
        node = cls(engine, bind=bind, own_engine=True, **node_kwargs)
        node._arena = arena
        return node

    # ------------------------------------------------------------------ #
    # Serve loop
    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while True:
            with self._state_lock:
                if self._draining or self._closed:
                    return
            try:
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed under us: shutdown
            with self._state_lock:
                if self._draining or self._closed:
                    conn.close()
                    return
                connection = self._connections
                self._connections += 1
            injector = (NetFaultInjector(self._plan, self.node_index, connection)
                        if self._plan is not None else None)
            if injector is not None and injector.refuses_connections:
                # Partition: the node is alive but unreachable for new
                # connections, exactly what a router's heartbeat sees.
                with self._state_lock:
                    self._connections_refused += 1
                conn.close()
                continue
            thread = threading.Thread(
                target=self._serve_connection, args=(conn, injector),
                name=f"node-{self.node_index}-conn-{connection}", daemon=True)
            with self._state_lock:
                self._conn_threads.add(thread)
            thread.start()

    def _serve_connection(self, conn: socket.socket,
                          injector: NetFaultInjector | None) -> None:
        try:
            if isinstance(conn.getsockname(), tuple):
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                if not self._await_frame_start(conn):
                    return
                conn.settimeout(self.read_timeout_s)
                try:
                    frame = recv_frame(conn)
                except (ConnectionClosed, OSError):
                    return
                except (ProtocolError, TimeoutError):
                    with self._state_lock:
                        self._protocol_errors += 1
                    return
                verdict = injector.on_request() if injector else None
                if verdict == "drop":
                    self._faults_fired["drop"] += 1
                    return
                if verdict == "stall":
                    self._faults_fired["stall"] += 1
                    self._stall_until_close()
                    return
                reply_kind, meta, arrays = self._handle(frame)
                action, delay = (injector.reply_action() if injector
                                 else (NetFaultInjector.REPLY, 0.0))
                if delay > 0.0:
                    time.sleep(delay)
                conn.settimeout(self.read_timeout_s)
                try:
                    if action == NetFaultInjector.GARBLE:
                        self._faults_fired["garble"] += 1
                        conn.sendall(GARBLED_REPLY)
                        return
                    send_frame(conn, reply_kind, meta, arrays)
                except (ConnectionClosed, OSError, TimeoutError):
                    return
                with self._state_lock:
                    self._requests_served += 1
        finally:
            conn.close()
            with self._state_lock:
                self._conn_threads.discard(threading.current_thread())

    def _await_frame_start(self, conn: socket.socket) -> bool:
        """Poll until the next frame's first byte is available.

        Returns ``False`` on EOF, connection error, or drain/close —
        the caller ends the connection.  Idle connections sit in this
        loop indefinitely without tripping the read timeout; the
        timeout only governs reads *inside* a frame.
        """
        conn.settimeout(_IDLE_POLL_S)
        while True:
            with self._state_lock:
                if self._draining or self._closed:
                    return False
            try:
                first = conn.recv(1, socket.MSG_PEEK)
            except TimeoutError:
                continue
            except OSError:
                return False
            return bool(first)  # b"" = EOF

    def _stall_until_close(self) -> None:
        """A stalled connection stays open, silent, until shutdown."""
        while True:
            with self._state_lock:
                if self._draining or self._closed:
                    return
            time.sleep(_IDLE_POLL_S)

    # ------------------------------------------------------------------ #
    # Verb dispatch
    # ------------------------------------------------------------------ #
    def _handle(self, frame: Frame) -> tuple[str, dict, dict[str, np.ndarray]]:
        rid = frame.meta.get("rid")
        try:
            meta, arrays = self._dispatch(frame)
        except Exception as error:  # noqa: BLE001 - faulted into the reply
            meta = {"error_type": type(error).__name__, "message": str(error)}
            retry_after = getattr(error, "retry_after_s", None)
            if retry_after is not None:
                meta["retry_after_s"] = float(retry_after)
            if rid is not None:
                meta["rid"] = rid
            return "error", meta, {}
        if rid is not None:
            meta["rid"] = rid
        return "ok", meta, arrays

    def _engine_kwargs(self, frame: Frame) -> dict:
        timeout = frame.meta.get("timeout_s")
        if timeout is not None and self._deadlines:
            return {"timeout": float(timeout)}
        return {}

    def _dispatch(self, frame: Frame) -> tuple[dict, dict[str, np.ndarray]]:
        kind = frame.kind
        engine = self.engine
        if kind == "hello":
            return {
                "num_users": int(engine.num_users),
                "num_items": int(engine.num_items),
                "exclude_seen": bool(engine.exclude_seen),
                "epoch": self.epoch,
                "node_index": self.node_index,
                "supports_deadlines": self._deadlines,
            }, {}
        if kind == "ping":
            with self._state_lock:
                draining = self._draining
            return {"epoch": self.epoch, "draining": draining}, {}
        if kind in ("score_all", "masked_scores"):
            users = frame.array("users")
            with self._engine_lock:
                method = getattr(engine, kind)
                scores = method(users, **self._engine_kwargs(frame))
            return {}, {"scores": np.asarray(scores)}
        if kind in ("top_k", "top_k_scored"):
            users = frame.array("users")
            k = int(frame.meta["k"])
            exclude = frame.meta.get("exclude_seen")
            kwargs = self._engine_kwargs(frame)
            if exclude is not None:
                kwargs["exclude_seen"] = bool(exclude)
            # Retrieval dial: mode/n_probe/candidate_multiplier pass
            # straight through to the engine (exact stays the default).
            mode = frame.meta.get("mode")
            if mode is not None:
                kwargs["mode"] = str(mode)
            if frame.meta.get("n_probe") is not None:
                kwargs["n_probe"] = int(frame.meta["n_probe"])
            if frame.meta.get("candidate_multiplier") is not None:
                kwargs["candidate_multiplier"] = int(
                    frame.meta["candidate_multiplier"])
            if kind == "top_k_scored":
                with self._engine_lock:
                    ranked, scores = engine.top_k_scored(users, k, **kwargs)
                return {}, {"ranked": np.asarray(ranked),
                            "scores": np.asarray(scores)}
            with self._engine_lock:
                ranked = engine.top_k(users, k, **kwargs)
            return {}, {"ranked": np.asarray(ranked)}
        if kind == "recommend_batch":
            users = frame.array("users")
            k = int(frame.meta["k"])
            with self._engine_lock:
                recs = engine.recommend_batch(users, k=k)
            width = max((len(row) for row in recs), default=0)
            items = np.full((len(recs), width), -1, dtype=np.int64)
            scores = np.full((len(recs), width), -np.inf, dtype=np.float64)
            for row, user_recs in enumerate(recs):
                for col, rec in enumerate(user_recs):
                    items[row, col] = rec.item
                    scores[row, col] = rec.score
            return {}, {"items": items, "scores": scores}
        if kind == "observe":
            user = int(frame.meta["user"])
            item = int(frame.meta["item"])
            seq = frame.meta.get("seq")
            seq = int(seq) if seq is not None else None
            with self._engine_lock:
                if seq is not None and seq <= self._applied_seq:
                    # Already applied (router at-least-once replay after
                    # a crash between "applied" and "watermark
                    # journaled"): acknowledge without re-applying.
                    self._observes_deduped += 1
                    return {"deduped": True}, {}
                if self._journal is not None:
                    # Write-ahead: what is not durable is not applied.
                    self._journal.append(
                        struct.pack("<qqq", -1 if seq is None else seq,
                                    user, item))
                    self._observes_journaled += 1
                engine.observe(user, item)
                if seq is not None:
                    self._applied_seq = seq
            return {}, {}
        if kind == "health":
            return {"health": self.health()}, {}
        if kind == "stats":
            return {"stats": self.stats()}, {}
        if kind == "snapshot":
            if not isinstance(engine, ScoringEngine):
                raise RuntimeError(
                    "snapshot hand-off requires a serial ScoringEngine "
                    f"(this node serves {type(engine).__name__})")
            with self._engine_lock:
                meta, arrays = serialize_live_engine(engine)
            return meta, arrays
        if kind == "drain":
            # Ack first; the drain flag is set after this reply is sent
            # via a short timer so the requester gets its answer.
            threading.Timer(0.0, self.drain).start()
            return {"draining": True}, {}
        raise ValueError(f"unknown verb {kind!r}")

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Liveness snapshot of this node (JSON-ready).

        ``healthy`` is ``False`` while draining/closed or when the
        wrapped engine reports degraded shards or an open breaker —
        the bit liveness probes and the CLI exit code key off.
        """
        with self._state_lock:
            payload = {
                "address": self.address,
                "node_index": self.node_index,
                "epoch": self.epoch,
                "draining": self._draining,
                "closed": self._closed,
            }
        healthy = not payload["draining"] and not payload["closed"]
        engine_health = getattr(self.engine, "health", None)
        if engine_health is not None:
            nested = engine_health()
            payload["engine"] = nested
            if nested.get("degraded_shards"):
                healthy = False
            if any(shard.get("breaker_open_s", 0) > 0
                   for shard in nested.get("shards", [])):
                healthy = False
        payload["healthy"] = healthy
        return payload

    def stats(self) -> dict:
        """Operational counters of this node (JSON-ready)."""
        with self._state_lock:
            payload = {
                "address": self.address,
                "connections_accepted": self._connections,
                "connections_refused": self._connections_refused,
                "requests_served": self._requests_served,
                "protocol_errors": self._protocol_errors,
                "faults_fired": dict(self._faults_fired),
                "applied_seq": self._applied_seq,
                "observes_deduped": self._observes_deduped,
                "observes_journaled": self._observes_journaled,
                "journal_replayed": self._journal_replayed,
            }
        if self._journal is not None:
            payload["journal"] = self._journal.stats()
        engine_stats = getattr(self.engine, "stats", None)
        if engine_stats is not None:
            payload["engine"] = engine_stats()
        return payload

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def install_sigterm_drain(self) -> None:
        """Drain gracefully on ``SIGTERM`` (main thread only).

        Installed by ``repro-ham serve-node`` and :func:`spawn_node`
        children so orchestrators get finish-in-flight semantics from a
        plain ``terminate()``.
        """
        signal.signal(signal.SIGTERM, lambda signum, sigframe: self.drain())

    def serve_forever(self) -> None:
        """Block until the node drains or closes."""
        while self._accept_thread.is_alive():
            self._accept_thread.join(timeout=_IDLE_POLL_S)

    def drain(self, timeout_s: float = 10.0) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, close.

        Every request already received is answered before its
        connection closes; new connections are refused.  Safe to call
        from signal handlers and from multiple threads.
        """
        with self._state_lock:
            if self._draining or self._closed:
                return
            self._draining = True
            threads = list(self._conn_threads)
        deadline = time.monotonic() + timeout_s
        for thread in threads:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if thread is not threading.current_thread():
                thread.join(timeout=remaining)
        self.close()

    def close(self) -> None:
        """Immediate shutdown: close the listener and every connection."""
        with self._state_lock:
            if self._closed:
                return
            self._closed = True
        self._listener.close()
        if self._accept_thread is not threading.current_thread():
            self._accept_thread.join(timeout=5.0)
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass
        if self._arena is not None:
            self._arena.close()
            self._arena = None
        if self._journal is not None:
            self._journal.close()
        if self._own_engine:
            self.engine.close()

    def __enter__(self) -> "EngineNode":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Process-per-node helper
# ---------------------------------------------------------------------- #
class NodeHandle:
    """A spawned node process and its serving address.

    The chaos tier's handle on real node death: :meth:`kill` SIGKILLs
    the process mid-stream (the crash scenario), :meth:`terminate`
    sends SIGTERM (graceful drain), :meth:`close` is terminate + join.
    """

    def __init__(self, process: mp.Process, address: str):
        self.process = process
        self.address = address

    @property
    def pid(self) -> int:
        """OS pid of the node process."""
        return self.process.pid

    def alive(self) -> bool:
        """Whether the node process is still running."""
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the node process (no drain, no goodbye — a crash)."""
        self.process.kill()
        self.process.join(timeout=10.0)

    def terminate(self) -> None:
        """SIGTERM the node process (drains gracefully, then exits)."""
        self.process.terminate()

    def join(self, timeout_s: float | None = None) -> None:
        """Wait for the node process to exit."""
        self.process.join(timeout=timeout_s)

    def close(self) -> None:
        """Graceful stop: SIGTERM, wait, escalate to SIGKILL if needed."""
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=10.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=10.0)

    def __enter__(self) -> "NodeHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _node_main(model, histories, options: dict, address_queue) -> None:
    """Entry point of a spawned node process."""
    engine = ScoringEngine(model, histories,
                           exclude_seen=options["exclude_seen"],
                           micro_batch_size=options["micro_batch_size"],
                           precompute=options["precompute"])
    node = EngineNode(engine, bind=options["bind"],
                      read_timeout_s=options["read_timeout_s"],
                      fault_plan=options["fault_plan"],
                      node_index=options["node_index"], own_engine=True,
                      journal_dir=options.get("journal_dir"),
                      journal_fsync=options.get("journal_fsync", "always"))
    node.install_sigterm_drain()
    address_queue.put(node.address)
    node.serve_forever()
    node.close()


def spawn_node(model, histories, *, bind: str = "127.0.0.1:0",
               exclude_seen: bool = True, micro_batch_size: int = 1024,
               precompute: bool = True,
               read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
               fault_plan: NetFaultPlan | None = None,
               node_index: int = 0,
               journal_dir: str | None = None,
               journal_fsync: str = "always",
               start_timeout_s: float = 60.0) -> NodeHandle:
    """Fork a child process serving ``EngineNode(ScoringEngine(...))``.

    Blocks until the child reports its bound address (so callers can
    immediately connect), and returns a :class:`NodeHandle` whose
    :meth:`~NodeHandle.kill` / :meth:`~NodeHandle.terminate` drive the
    crash and drain scenarios of the chaos tier.
    """
    ctx = mp.get_context("fork")
    address_queue = ctx.Queue()
    options = {
        "bind": bind,
        "exclude_seen": exclude_seen,
        "micro_batch_size": micro_batch_size,
        "precompute": precompute,
        "read_timeout_s": read_timeout_s,
        "fault_plan": fault_plan,
        "node_index": node_index,
        "journal_dir": journal_dir,
        "journal_fsync": journal_fsync,
    }
    process = ctx.Process(target=_node_main,
                          args=(model, histories, options, address_queue),
                          daemon=True)
    process.start()
    try:
        address = address_queue.get(timeout=start_timeout_s)
    except Exception as error:
        process.kill()
        process.join(timeout=10.0)
        raise RuntimeError("node process failed to report an address") from error
    return NodeHandle(process, address)
