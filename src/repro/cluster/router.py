"""`ClusterRouter`: consistent-hash routing with replica failover.

The client tier of the cluster: a router owns a fixed table of node
addresses, assigns every user to a **range** by consistent hash, and
serves each range from a **replica set** of nodes (primary first).
Because every node holds the complete scoring snapshot, any replica
answers any user bit-identically — replication buys availability, and
the hash assignment buys locality of the ``observe()`` write path, not
correctness.

Failure handling, end to end:

* **Heartbeats** — a background thread pings every node; a node that
  stops answering is marked down and skipped by the request path until
  a later probe (or a desperate retry) finds it again.
* **Failover** — a range request tries its primary, then each replica,
  re-trying in rounds until the caller's deadline runs out.  Each
  attempt's socket work is bounded by the *remaining* budget, so a
  retry never exceeds the caller's deadline (the PR 7 contract), and a
  request only fails when every replica is gone or the budget is spent.
* **Reconnect with backoff** — a failed node's reconnection attempts
  back off exponentially (base/factor/max mirroring
  :class:`~repro.parallel.supervisor.RestartPolicy`), so a dead host is
  not hammered while its replicas carry the load.
* **Stale-result dropping** — requests carry monotonically increasing
  ids; after a timeout the connection is kept and any late reply that
  eventually lands is matched against the *current* id and dropped
  (counted in :meth:`stats`), never delivered to the wrong caller.
* **Epoch fencing + observe replay** — every ``observe()`` is applied
  synchronously to the live replicas of the owning range and appended
  to an ordered log with per-node watermarks.  A node that was down
  catches up from its watermark before serving again; a node whose
  *epoch* changed (crash + fresh process at the same address) is
  replayed from the beginning, because its engine restarted from the
  base snapshot.  That is what keeps post-failover answers bit-identical
  even for users whose history changed mid-flight.
* **Durable observe log (PR 9)** — with ``wal_dir=...`` the log lives
  in a :class:`~repro.durability.wal.WriteAheadLog`: every observe is
  journaled (write-ahead) before it is applied anywhere, per-node
  watermarks and epochs are journaled alongside, and a restarted
  router rebuilds both from the WAL — a SIGKILLed router comes back
  and still serves bit-identical top-k, including replicated observes.
  Sealed WAL segments are compacted once every replica's watermark
  passes them.  Replayed observes carry their log sequence number, so
  a node that already applied an entry (same epoch) deduplicates it —
  the crash window between "applied" and "watermark journaled" does
  not double-apply.

The router implements the full engine duck-type
(``num_users`` / ``num_items`` / ``exclude_seen`` / ``score_all`` /
``masked_scores`` / ``top_k`` / ``recommend_batch`` / ``observe`` /
``health`` / ``supports_deadlines``), so a
:class:`~repro.serving.gateway.ServingGateway` front-ends a cluster
exactly as it front-ends a local engine — micro-batching, caching and
load shedding unchanged (see ``ServingGateway.over_cluster``).

Rejoin contract: a replacement process at a known address must boot
from the **base** snapshot (the original checkpoint/histories, without
any observed interactions); the router's full replay is what brings it
current.  Booting a rejoining node from a *current* peer snapshot would
double-apply the log.
"""

from __future__ import annotations

import bisect
import struct
import threading
import time

import numpy as np

from repro.cluster.node import DEFAULT_READ_TIMEOUT_S, _connect, raise_reply_error
from repro.cluster.protocol import (
    ConnectionClosed,
    Frame,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.durability.wal import (
    DEFAULT_SEGMENT_BYTES,
    WalCompactedError,
    WalWriteError,
    WriteAheadLog,
    pack_observe,
    unpack_observe,
)
from repro.parallel.sharded import DEFAULT_REQUEST_TIMEOUT_S
from repro.serving.engine import Recommendation

__all__ = ["ClusterRouter", "NodeUnavailable", "user_range",
           "DEFAULT_REQUEST_TIMEOUT_S"]

#: Multiplicative (Fibonacci) hash constant — plain 32-bit integer
#: arithmetic, so the user→range assignment is identical on every
#: platform and every run.
_HASH_MULTIPLIER = 0x9E3779B1
_HASH_MODULUS = 1 << 32


class NodeUnavailable(ConnectionError):
    """A node could not be reached (down, refusing, or backing off).

    Internal to the failover loop: the request path treats it as "try
    the next replica", and only surfaces a failure to the caller when
    every replica is unavailable past the deadline.
    """


def user_range(user: int, n_ranges: int) -> int:
    """The consistent range of ``user`` among ``n_ranges`` ranges.

    A multiplicative hash rather than ``user % n_ranges``, so
    contiguous user ids (the common enumeration order) spread across
    ranges instead of marching through them in lockstep.
    """
    return int((int(user) * _HASH_MULTIPLIER) % _HASH_MODULUS) % int(n_ranges)


def _ranges_of(users: np.ndarray, n_ranges: int) -> np.ndarray:
    """Vectorized :func:`user_range` over an id array."""
    hashed = (users.astype(np.uint64) * np.uint64(_HASH_MULTIPLIER)) \
        % np.uint64(_HASH_MODULUS)
    return (hashed % np.uint64(n_ranges)).astype(np.int64)


class _NodeClient:
    """One node's persistent connection, epoch and observe watermark.

    All socket state is guarded by ``lock``; the heartbeat thread uses
    a non-blocking acquire so probing never queues behind a request in
    flight (a busy connection is proof of life anyway).
    """

    def __init__(self, address: str, index: int, *, connect_timeout_s: float,
                 io_timeout_s: float, backoff_base_s: float,
                 backoff_factor: float, backoff_max_s: float):
        self.address = address
        self.index = index
        self.lock = threading.Lock()
        self.sock = None
        self.up = False
        self.epoch: str | None = None
        self.hello: dict = {}
        #: Observe-log sequence number this node is current to
        #: (exclusive: every entry with ``seq < watermark`` applied).
        self.watermark = 0
        self.rejoins = 0
        self._rid = 0
        self._connect_timeout_s = connect_timeout_s
        self._io_timeout_s = io_timeout_s
        self._backoff_base_s = backoff_base_s
        self._backoff_factor = backoff_factor
        self._backoff_max_s = backoff_max_s
        self._failures = 0
        self._next_attempt_at = 0.0

    # Callers hold self.lock for everything below. ---------------------- #
    def _record_failure(self) -> None:
        self.up = False
        backoff = min(self._backoff_base_s * (self._backoff_factor ** self._failures),
                      self._backoff_max_s)
        self._failures += 1
        self._next_attempt_at = time.monotonic() + backoff
        self._close_socket()

    def _close_socket(self) -> None:
        if self.sock is not None:
            try:
                self.sock.close()
            except OSError:
                pass
            self.sock = None

    def ensure_connected(self, remaining_s: float) -> bool:
        """Connect + ``hello`` if needed; ``True`` when a rejoin was seen.

        Honours the reconnect backoff gate and the caller's remaining
        budget.  A successful hello resets the failure streak; an epoch
        different from the last known one marks the node as a fresh
        process and resets its observe watermark for full replay.
        """
        if self.sock is not None:
            return False
        now = time.monotonic()
        if now < self._next_attempt_at:
            raise NodeUnavailable(
                f"{self.address} backing off for "
                f"{self._next_attempt_at - now:.3f}s")
        timeout = min(self._connect_timeout_s, remaining_s)
        if timeout <= 0:
            raise TimeoutError(f"no budget left to connect to {self.address}")
        try:
            self.sock = _connect(self.address, timeout)
            hello = self._call_locked("hello", {}, {}, remaining_s)
        except (ConnectionClosed, ProtocolError, OSError, TimeoutError):
            self._record_failure()
            raise NodeUnavailable(f"{self.address} is unreachable") from None
        self.hello = hello.meta
        self._failures = 0
        self._next_attempt_at = 0.0
        self.up = True
        rejoined = False
        epoch = hello.meta.get("epoch")
        if self.epoch is not None and epoch != self.epoch:
            # Fresh process at the same address: engine state reset to
            # the base snapshot — replay the observe log from zero.
            rejoined = True
            self.rejoins += 1
            self.watermark = 0
        self.epoch = epoch
        return rejoined

    def _call_locked(self, kind: str, meta: dict,
                     arrays: dict, remaining_s: float) -> Frame:
        """One request/reply on the live socket; drops stale replies.

        Raises ``TimeoutError`` when the budget expires (socket kept:
        the late reply will be recognized as stale and dropped on the
        next call), or a connection-level error (socket closed)."""
        self._rid += 1
        rid = self._rid
        deadline = time.monotonic() + remaining_s
        stale = 0
        try:
            self.sock.settimeout(min(self._io_timeout_s, remaining_s))
            send_frame(self.sock, kind, {**meta, "rid": rid}, arrays)
            while True:
                budget = deadline - time.monotonic()
                if budget <= 0:
                    raise TimeoutError(f"{self.address}: reply overdue")
                self.sock.settimeout(min(self._io_timeout_s, budget))
                reply = recv_frame(self.sock)
                if reply.meta.get("rid") == rid:
                    self.stale_dropped = stale
                    return reply
                stale += 1
        except TimeoutError:
            self.stale_dropped = stale
            raise
        except (ConnectionClosed, ProtocolError, OSError):
            self.stale_dropped = stale
            self._record_failure()
            raise

    stale_dropped = 0  # stale replies dropped by the last call

    def close(self) -> None:
        """Drop the connection (router shutdown)."""
        with self.lock:
            self._close_socket()


class ClusterRouter:
    """Routes engine requests across replicated :class:`EngineNode` s.

    Parameters
    ----------
    addresses:
        The fixed node table — ``"host:port"`` / ``"unix:/path"``
        strings, one per node.  Node *i* of the table is primary for
        the ranges that hash to *i* and replica for its neighbours'.
    replication:
        Nodes per replica set (primary included), capped at the node
        count.  ``replication=1`` disables failover.
    n_ranges:
        Hash ranges (default: one per node).
    request_timeout_s:
        Default end-to-end deadline per request (``None`` = wait
        forever); callers override per request via ``timeout=``.
    heartbeat_interval_s:
        Probe period of the background heartbeat (``0`` disables it —
        failure detection then happens only on the request path).
    connect_timeout_s / io_timeout_s:
        Per-attempt socket bounds; both are additionally clamped to the
        request's remaining budget.
    backoff_base_s / backoff_factor / backoff_max_s:
        Reconnect backoff schedule of a failed node.
    require_connect:
        Require at least one node reachable at construction (default);
        ``False`` starts fully offline and relies on heartbeats.
    wal_dir:
        Directory of the durable observe log (``repro-ham route
        --wal-dir``).  ``None`` (default) keeps the log in memory only
        — a router restart loses replay state, exactly the pre-PR 9
        behaviour.  Reopening a router on an existing ``wal_dir``
        rebuilds the log and every node's (watermark, epoch) from the
        journal.
    wal_fsync / wal_segment_bytes:
        Fsync policy (``"always"``/``"interval"``/``"never"``) and
        segment rotation threshold of the WAL; see
        :class:`~repro.durability.wal.WriteAheadLog`.
    wal_fault_injector:
        Optional :class:`~repro.durability.diskfaults.DiskFaultInjector`
        for the ``chaos_disk`` tier; production callers leave it
        ``None``.
    """

    def __init__(self, addresses: list[str], replication: int = 2,
                 n_ranges: int | None = None,
                 request_timeout_s: float | None = DEFAULT_REQUEST_TIMEOUT_S,
                 heartbeat_interval_s: float = 2.0,
                 connect_timeout_s: float = 5.0,
                 io_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
                 backoff_base_s: float = 0.05, backoff_factor: float = 2.0,
                 backoff_max_s: float = 2.0,
                 require_connect: bool = True,
                 wal_dir: str | None = None, wal_fsync: str = "always",
                 wal_segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 wal_fault_injector=None):
        if not addresses:
            raise ValueError("at least one node address is required")
        if replication < 1:
            raise ValueError("replication must be positive")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ValueError("request_timeout_s must be positive (or None)")
        self.addresses = list(addresses)
        self.replication = min(int(replication), len(self.addresses))
        self.n_ranges = int(n_ranges) if n_ranges else len(self.addresses)
        if self.n_ranges < 1:
            raise ValueError("n_ranges must be positive")
        self.request_timeout_s = request_timeout_s
        self._clients = [
            _NodeClient(address, index,
                        connect_timeout_s=connect_timeout_s,
                        io_timeout_s=io_timeout_s,
                        backoff_base_s=backoff_base_s,
                        backoff_factor=backoff_factor,
                        backoff_max_s=backoff_max_s)
            for index, address in enumerate(self.addresses)
        ]
        # Ordered observe log: (seq, range, user, item), sorted by seq;
        # per-node watermarks are *sequence numbers* (exclusive bound:
        # the node has applied every entry with seq < watermark), so
        # they stay meaningful across compaction and — with a WAL —
        # across router restarts.  Guarded by _observe_lock.
        self._observe_log: list[tuple[int, int, int, int]] = []
        self._observe_lock = threading.Lock()
        self._next_seq = 0  # seq counter of the in-memory (no-WAL) mode
        self._compacted_below = 0  # first seq still replayable
        self._journaled_state: dict[int, tuple[int, str | None]] = {}

        self._stats_lock = threading.Lock()
        self._stats = {
            "requests": 0,
            "range_requests": 0,
            "failovers": 0,
            "retry_rounds": 0,
            "reconnects": 0,
            "stale_replies_dropped": 0,
            "deadline_timeouts": 0,
            "observes": 0,
            "observes_replayed": 0,
            "rejoins_detected": 0,
            "wal_recovered_observes": 0,
            "wal_write_errors": 0,
            "wal_compactions": 0,
            "catch_up_impossible": 0,
        }

        self._wal: WriteAheadLog | None = None
        if wal_dir is not None:
            self._wal = WriteAheadLog(
                wal_dir, segment_bytes=wal_segment_bytes, fsync=wal_fsync,
                fault_injector=wal_fault_injector)
            self._recover_from_wal()

        self._closed = False
        self._stop = threading.Event()

        self.num_users: int | None = None
        self.num_items: int | None = None
        self.exclude_seen = True
        connected = 0
        for client in self._clients:
            with client.lock:
                try:
                    client.ensure_connected(connect_timeout_s)
                    connected += 1
                except (NodeUnavailable, TimeoutError):
                    continue
            self._adopt_hello(client.hello)
        if require_connect and connected == 0:
            self.close()
            raise ConnectionError(
                f"none of the {len(self.addresses)} cluster nodes is reachable")

        self._heartbeat_interval_s = heartbeat_interval_s
        self._heartbeat_thread = None
        if heartbeat_interval_s > 0:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, name="router-heartbeat",
                daemon=True)
            self._heartbeat_thread.start()

    # ------------------------------------------------------------------ #
    # Capability surface (the engine duck-type)
    # ------------------------------------------------------------------ #
    @property
    def supports_deadlines(self) -> bool:
        """Deadlines are enforced by the router itself — always true."""
        return True

    def _adopt_hello(self, hello: dict) -> None:
        if not hello:
            return
        num_users = int(hello["num_users"])
        num_items = int(hello["num_items"])
        if self.num_users is None:
            self.num_users = num_users
            self.num_items = num_items
            self.exclude_seen = bool(hello["exclude_seen"])
        elif (self.num_users, self.num_items) != (num_users, num_items):
            raise ValueError(
                f"node disagrees on snapshot shape: "
                f"({num_users}, {num_items}) vs "
                f"({self.num_users}, {self.num_items})")

    # ------------------------------------------------------------------ #
    # Durable observe log (WAL)
    # ------------------------------------------------------------------ #
    # Record payloads (the framing around them is the WAL's):
    #   b"O" + <qq user item>          — one observed interaction
    #   b"A" + <q  seq>                — abort: the observe journaled at
    #                                    ``seq`` was applied by no
    #                                    replica and must not replay
    #   b"W" + <qq node watermark> + epoch-utf8
    #                                  — node ``node`` is current to
    #                                    ``watermark`` under ``epoch``
    _ABORT_TAG = b"A"
    _WATERMARK_TAG = b"W"

    def _recover_from_wal(self) -> None:
        """Rebuild the observe log and node watermarks from the journal.

        Observes re-enter the in-memory log at their original sequence
        numbers (ranges recomputed — the hash is deterministic), abort
        records delete the entry they name, and the *last* watermark
        record per node wins.  A journaled watermark is trusted only if
        the node still reports the journaled epoch when we connect —
        ``ensure_connected`` resets it to zero otherwise, exactly as it
        fences a mid-flight restart.
        """
        recovered = 0
        for seq, payload in self._wal.replay():
            tag = payload[:1]
            if tag == b"O":
                user, item = unpack_observe(payload)
                self._observe_log.append(
                    (seq, user_range(user, self.n_ranges), user, item))
                recovered += 1
            elif tag == self._ABORT_TAG:
                (target,) = struct.unpack("<q", payload[1:9])
                for index in range(len(self._observe_log) - 1, -1, -1):
                    if self._observe_log[index][0] == target:
                        del self._observe_log[index]
                        recovered -= 1
                        break
            elif tag == self._WATERMARK_TAG:
                node_index, watermark = struct.unpack("<qq", payload[1:17])
                epoch = payload[17:].decode("utf-8") or None
                if 0 <= node_index < len(self._clients):
                    client = self._clients[node_index]
                    client.watermark = int(watermark)
                    client.epoch = epoch
        self._compacted_below = self._wal.first_seq
        self._stats["wal_recovered_observes"] = recovered

    def _journal_node_state(self, client: _NodeClient,
                            force: bool = False) -> None:
        """Journal ``client``'s (watermark, epoch) if it changed.

        Called with ``client.lock`` held (the watermark/epoch pair must
        be read consistently).  A failed append is counted and skipped:
        the journal then under-states the watermark, which on restart
        means re-replaying entries the node deduplicates by sequence
        number — safe, just slower.
        """
        if self._wal is None:
            return
        state = (client.watermark, client.epoch)
        if not force and self._journaled_state.get(client.index) == state:
            return
        payload = (self._WATERMARK_TAG
                   + struct.pack("<qq", client.index, client.watermark)
                   + (client.epoch or "").encode("utf-8"))
        try:
            self._wal.append(payload)
        except WalWriteError:
            self._bump("wal_write_errors")
            return
        self._journaled_state[client.index] = state

    def _maybe_compact(self) -> None:
        """Drop WAL segments every replica's watermark has passed.

        The horizon is the minimum watermark over *all* nodes (a down
        node pins it — its entries must stay replayable), and fresh
        watermark records are journaled first so the surviving suffix
        still carries every node's state.  The in-memory log is trimmed
        to match, so restart and live state agree on what is
        replayable.
        """
        if self._wal is None:
            return
        horizon = min(client.watermark for client in self._clients)
        if not self._wal.has_compactable(horizon):
            return
        for client in self._clients:
            with client.lock:
                self._journal_node_state(client, force=True)
        result = self._wal.compact(horizon)
        if result["segments_deleted"]:
            with self._observe_lock:
                self._compacted_below = self._wal.first_seq
                cut = bisect.bisect_left(self._observe_log,
                                         (self._compacted_below,))
                if cut:
                    del self._observe_log[:cut]
            self._bump("wal_compactions")

    # ------------------------------------------------------------------ #
    # Routing primitives
    # ------------------------------------------------------------------ #
    def _replica_indices(self, range_id: int) -> list[int]:
        n = len(self._clients)
        return [(range_id + j) % n for j in range(self.replication)]

    def _node_ranges(self, node_index: int) -> set[int]:
        """Ranges whose replica set includes node ``node_index``."""
        return {r for r in range(self.n_ranges)
                if node_index in self._replica_indices(r)}

    def _bump(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += amount

    def _deadline_for(self, timeout: float | None) -> float:
        if timeout is None:
            timeout = self.request_timeout_s
        if timeout is None:
            timeout = 365.0 * 24 * 3600  # "forever", but still a number
        return time.monotonic() + timeout

    def _catch_up_locked(self, client: _NodeClient, deadline: float,
                         upto: int | None = None) -> None:
        """Replay pending observe-log entries to ``client`` (lock held).

        Replays every entry with ``watermark <= seq < upto`` (``upto``
        defaults to the whole log).  Entries outside the node's ranges
        advance the watermark for free; relevant ones are re-applied in
        order via the ``observe`` verb, carrying their sequence number
        so the node can deduplicate anything it already applied.
        Raises on failure with the watermark pointing at the first
        unapplied entry, so a later catch-up resumes exactly there.
        Raises :class:`~repro.durability.wal.WalCompactedError` when the
        entries the node needs were compacted away — only possible for
        a fresh-epoch node joining a restarted router; such a node must
        bootstrap from a current peer snapshot instead.
        """
        log = self._observe_log
        end = (log[-1][0] + 1 if log else 0) if upto is None else upto
        if client.watermark >= end:
            return
        if client.watermark < self._compacted_below:
            self._bump("catch_up_impossible")
            raise WalCompactedError(
                f"{client.address}: watermark {client.watermark} is below "
                f"the compaction horizon {self._compacted_below}; the "
                f"entries it needs are gone — bootstrap the node from a "
                f"live peer snapshot")
        # Snapshot (atomic under the GIL): entries are append-ordered by
        # seq, so a bisect finds the resume point without _observe_lock
        # (which observe() may already hold above us, or a concurrent
        # observe may hold while waiting on another node's lock).
        snapshot = list(log)
        start = bisect.bisect_left(snapshot, (client.watermark,))
        ranges = self._node_ranges(client.index)
        replayed = 0
        try:
            for seq, range_id, user, item in snapshot[start:]:
                if seq >= end:
                    break
                if range_id in ranges:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise TimeoutError(
                            f"deadline expired replaying observes to "
                            f"{client.address}")
                    reply = client._call_locked(
                        "observe",
                        {"user": user, "item": item, "seq": seq},
                        {}, remaining)
                    if reply.kind == "error":
                        raise_reply_error(reply)
                    replayed += 1
                client.watermark = seq + 1
            client.watermark = max(client.watermark, end)
        finally:
            if replayed:
                self._bump("observes_replayed", replayed)
            self._journal_node_state(client)

    def _attempt(self, client: _NodeClient, kind: str, meta: dict,
                 arrays: dict, deadline: float) -> Frame:
        """One request attempt on one node, catch-up included."""
        with client.lock:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("request deadline expired")
            was_connected = client.sock is not None
            rejoined = client.ensure_connected(remaining)
            if not was_connected and client.sock is not None:
                self._bump("reconnects")
            if rejoined:
                self._bump("rejoins_detected")
            self._adopt_hello(client.hello)
            self._catch_up_locked(client, deadline)
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("request deadline expired")
            reply = client._call_locked(
                kind, {**meta, "timeout_s": remaining}, arrays, remaining)
            if client.stale_dropped:
                self._bump("stale_replies_dropped", client.stale_dropped)
            if reply.kind == "error":
                raise_reply_error(reply)
            client.up = True
            return reply

    def _range_request(self, range_id: int, kind: str, meta: dict,
                       arrays: dict, deadline: float) -> Frame:
        """Serve one range's sub-request with failover and retry rounds.

        Replicas are tried primary-first; connection failures and
        timeouts advance to the next replica, and exhausted rounds
        retry (after a short pause) until the deadline expires.
        Application-level remote errors propagate immediately — they
        are deterministic across bit-identical replicas.
        """
        self._bump("range_requests")
        indices = self._replica_indices(range_id)
        last_error: Exception | None = None
        first_round = True
        while True:
            for position, node_index in enumerate(indices):
                client = self._clients[node_index]
                if deadline - time.monotonic() <= 0:
                    break
                try:
                    reply = self._attempt(client, kind, meta, arrays, deadline)
                except (OSError, ProtocolError, WalCompactedError) as error:
                    # NodeUnavailable, ConnectionClosed, raw socket
                    # errors and TimeoutError all subclass OSError;
                    # ProtocolError is a garbled stream; a
                    # WalCompactedError replica cannot be caught up.
                    # All of them mean "this replica cannot answer
                    # now" — fail over.
                    last_error = error
                    continue
                if position > 0 or not first_round:
                    self._bump("failovers")
                return reply
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._bump("deadline_timeouts")
                raise TimeoutError(
                    f"range {range_id}: no replica answered before the "
                    f"deadline (last error: {last_error})")
            first_round = False
            self._bump("retry_rounds")
            time.sleep(min(0.02, remaining))

    # ------------------------------------------------------------------ #
    # Scoring API
    # ------------------------------------------------------------------ #
    def _as_user_array(self, users) -> np.ndarray:
        if self.num_users is None:
            raise RuntimeError("router has never reached a node; the "
                               "snapshot shape is unknown")
        users = np.asarray(users, dtype=np.int64)
        if users.ndim != 1:
            raise ValueError("users must be a 1-d sequence of user ids")
        if users.size and (users.min() < 0 or users.max() >= self.num_users):
            bad = users[(users < 0) | (users >= self.num_users)][0]
            raise ValueError(f"user id {bad} outside [0, {self.num_users})")
        return users

    def _fan_out(self, users: np.ndarray):
        """``(range_id, positions, user_ids)`` groups of a user array."""
        ranges = _ranges_of(users, self.n_ranges)
        groups = []
        for range_id in np.unique(ranges):
            positions = np.nonzero(ranges == range_id)[0]
            groups.append((int(range_id), positions, users[positions]))
        return groups

    def _matrix_request(self, kind: str, users, timeout: float | None,
                        ) -> np.ndarray:
        users = self._as_user_array(users)
        self._bump("requests")
        deadline = self._deadline_for(timeout)
        out: np.ndarray | None = None
        if users.size == 0:
            return np.zeros((0, self.num_items), dtype=np.float64)
        for range_id, positions, ids in self._fan_out(users):
            reply = self._range_request(range_id, kind, {},
                                        {"users": ids}, deadline)
            scores = reply.array("scores")
            if out is None:
                out = np.empty((users.size, scores.shape[1]),
                               dtype=scores.dtype)
            out[positions] = scores
        return out

    def score_all(self, users, timeout: float | None = None) -> np.ndarray:
        """Raw scores ``(B, num_items)``, merged across the cluster."""
        return self._matrix_request("score_all", users, timeout)

    def masked_scores(self, users, timeout: float | None = None) -> np.ndarray:
        """Seen-masked scores ``(B, num_items)`` across the cluster."""
        return self._matrix_request("masked_scores", users, timeout)

    def top_k(self, users, k: int, exclude_seen: bool | None = None,
              timeout: float | None = None, mode: str | None = None,
              n_probe: int | None = None,
              candidate_multiplier: int | None = None) -> np.ndarray:
        """Ranked top-``k`` ids per user, bit-identical to one engine.

        ``mode="ann"`` (with the optional ``n_probe`` /
        ``candidate_multiplier`` dial) selects the nodes' ANN candidate
        stage; the dial travels in the request meta, so mixed exact/ANN
        traffic over one connection is fine.
        """
        if k < 1:
            raise ValueError("k must be positive")
        if mode not in (None, "exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        users = self._as_user_array(users)
        self._bump("requests")
        deadline = self._deadline_for(timeout)
        width = min(int(k), self.num_items)
        ranked = np.empty((users.size, width), dtype=np.int64)
        meta: dict = {"k": int(k)}
        if exclude_seen is not None:
            meta["exclude_seen"] = bool(exclude_seen)
        if mode is not None:
            meta["mode"] = mode
        if n_probe is not None:
            meta["n_probe"] = int(n_probe)
        if candidate_multiplier is not None:
            meta["candidate_multiplier"] = int(candidate_multiplier)
        for range_id, positions, ids in self._fan_out(users):
            reply = self._range_request(range_id, "top_k", meta,
                                        {"users": ids}, deadline)
            ranked[positions] = reply.array("ranked")
        return ranked

    def top_k_scored(self, users, k: int, exclude_seen: bool | None = None,
                     timeout: float | None = None, mode: str | None = None,
                     n_probe: int | None = None,
                     candidate_multiplier: int | None = None,
                     ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`top_k` plus the (float64) scores of the returned items."""
        if k < 1:
            raise ValueError("k must be positive")
        if mode not in (None, "exact", "ann"):
            raise ValueError(f"mode must be 'exact' or 'ann', got {mode!r}")
        users = self._as_user_array(users)
        self._bump("requests")
        deadline = self._deadline_for(timeout)
        width = min(int(k), self.num_items)
        ranked = np.empty((users.size, width), dtype=np.int64)
        scores = np.empty((users.size, width), dtype=np.float64)
        meta: dict = {"k": int(k)}
        if exclude_seen is not None:
            meta["exclude_seen"] = bool(exclude_seen)
        if mode is not None:
            meta["mode"] = mode
        if n_probe is not None:
            meta["n_probe"] = int(n_probe)
        if candidate_multiplier is not None:
            meta["candidate_multiplier"] = int(candidate_multiplier)
        for range_id, positions, ids in self._fan_out(users):
            reply = self._range_request(range_id, "top_k_scored", meta,
                                        {"users": ids}, deadline)
            ranked[positions] = reply.array("ranked")
            scores[positions] = reply.array("scores")
        return ranked, scores

    def recommend_batch(self, users, k: int = 10,
                        timeout: float | None = None,
                        ) -> list[list[Recommendation]]:
        """Top-``k`` :class:`Recommendation` lists per user."""
        if k < 1:
            raise ValueError("k must be positive")
        users = self._as_user_array(users)
        self._bump("requests")
        deadline = self._deadline_for(timeout)
        results: list[list[Recommendation] | None] = [None] * users.size
        for range_id, positions, ids in self._fan_out(users):
            reply = self._range_request(range_id, "recommend_batch",
                                        {"k": int(k)}, {"users": ids},
                                        deadline)
            items = reply.array("items")
            scores = reply.array("scores")
            for row, position in enumerate(positions):
                results[int(position)] = [
                    Recommendation(item=int(item), score=float(score),
                                   rank=rank)
                    for rank, (item, score)
                    in enumerate(zip(items[row], scores[row]))
                    if item >= 0
                ]
        return results

    def recommend(self, user: int, k: int = 10) -> list[Recommendation]:
        """Top-``k`` recommendations for one user."""
        return self.recommend_batch([user], k)[0]

    # ------------------------------------------------------------------ #
    # Observe replication
    # ------------------------------------------------------------------ #
    def observe(self, user: int, item: int,
                timeout: float | None = None) -> None:
        """Record an interaction on every live replica of the owner range.

        The entry is journaled to the WAL (when one is configured)
        **before** it is applied anywhere — write-ahead — then appended
        to the ordered observe log; replicas that are down (or
        mid-rejoin) skip it now and catch up from their watermark
        before they serve again, which is what keeps failover answers
        bit-identical.  Raises if *no* replica applied the entry — the
        interaction is then not logged at all (a durable abort record
        cancels the journaled entry), so a caller retry cannot
        double-apply it.  A WAL append failure (disk full, I/O error)
        raises :class:`~repro.durability.wal.WalWriteError` before any
        replica is touched: what cannot be made durable is not applied.
        """
        if self.num_users is None or not 0 <= user < self.num_users:
            raise ValueError(f"user id {user} outside [0, {self.num_users})")
        if not 0 <= item < (self.num_items or 0):
            raise ValueError(f"item id {item} outside [0, {self.num_items})")
        deadline = self._deadline_for(timeout)
        range_id = user_range(user, self.n_ranges)
        with self._observe_lock:
            if self._wal is not None:
                try:
                    seq = self._wal.append(pack_observe(user, item))
                except WalWriteError:
                    self._bump("wal_write_errors")
                    raise
            else:
                seq = self._next_seq
                self._next_seq += 1
            self._observe_log.append((seq, range_id, int(user), int(item)))
            applied = 0
            for node_index in self._replica_indices(range_id):
                client = self._clients[node_index]
                with client.lock:
                    try:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError("observe deadline expired")
                        client.ensure_connected(remaining)
                        # Older entries first, then this one, in order.
                        self._catch_up_locked(client, deadline, upto=seq)
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise TimeoutError("observe deadline expired")
                        reply = client._call_locked(
                            "observe", {"user": int(user), "item": int(item),
                                        "seq": seq},
                            {}, remaining)
                        if reply.kind == "error":
                            raise_reply_error(reply)
                        client.watermark = seq + 1
                        self._journal_node_state(client)
                        applied += 1
                    except (OSError, ProtocolError, RuntimeError):
                        continue
            if applied == 0:
                self._observe_log.pop()
                if self._wal is not None:
                    try:
                        self._wal.append(
                            self._ABORT_TAG + struct.pack("<q", seq))
                    except WalWriteError:
                        self._bump("wal_write_errors")
                raise ConnectionError(
                    f"observe({user}, {item}): no live replica of range "
                    f"{range_id} accepted the interaction")
            self._bump("observes")

    # ------------------------------------------------------------------ #
    # Heartbeats
    # ------------------------------------------------------------------ #
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_interval_s):
            for client in self._clients:
                if self._stop.is_set():
                    return
                # Never queue behind an in-flight request: a busy
                # connection is proof of life.
                if not client.lock.acquire(blocking=False):
                    continue
                try:
                    rejoined = client.ensure_connected(
                        self._heartbeat_interval_s)
                    if rejoined:
                        self._bump("rejoins_detected")
                    reply = client._call_locked(
                        "ping", {}, {}, self._heartbeat_interval_s)
                    if reply.kind == "error":
                        continue
                    client.up = True
                    # A recovered node catches up on missed observes
                    # here, off the request path.
                    deadline = time.monotonic() + self._heartbeat_interval_s
                    self._catch_up_locked(client, deadline)
                except (OSError, ProtocolError, RuntimeError):
                    continue
                finally:
                    client.lock.release()
            # Off every node's lock: reclaim WAL segments every
            # replica's watermark has passed.
            self._maybe_compact()

    # ------------------------------------------------------------------ #
    # Observability & lifecycle
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        """Cluster liveness snapshot, JSON-ready.

        ``healthy`` requires every range to have at least one node that
        is up; per-node entries report address, up/down, epoch, observe
        watermark and rejoin count.
        """
        nodes = []
        for client in self._clients:
            nodes.append({
                "address": client.address,
                "node_index": client.index,
                "up": client.up,
                "epoch": client.epoch,
                "watermark": client.watermark,
                "rejoins": client.rejoins,
            })
        ranges_covered = all(
            any(self._clients[i].up for i in self._replica_indices(r))
            for r in range(self.n_ranges))
        with self._observe_lock:
            log_len = len(self._observe_log)
        return {
            "healthy": ranges_covered and not self._closed,
            "closed": self._closed,
            "n_ranges": self.n_ranges,
            "replication": self.replication,
            "observe_log_len": log_len,
            "compacted_below": self._compacted_below,
            "wal": self._wal.stats() if self._wal is not None else None,
            "nodes": nodes,
        }

    def stats(self) -> dict:
        """Routing counters (failovers, retries, stale drops, ...)."""
        with self._stats_lock:
            return dict(self._stats)

    def close(self) -> None:
        """Stop heartbeats, drop node connections, seal the WAL."""
        if self._closed:
            return
        self._closed = True
        self._stop.set()
        thread = getattr(self, "_heartbeat_thread", None)
        if thread is not None:
            thread.join(timeout=5.0)
        for client in self._clients:
            client.close()
        if self._wal is not None:
            self._wal.close()

    def __enter__(self) -> "ClusterRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
