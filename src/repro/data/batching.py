"""Mini-batch iteration over sliding-window training instances."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.windows import SlidingWindowInstances

__all__ = ["Batch", "BatchIterator"]


@dataclass
class Batch:
    """One mini-batch of training instances.

    ``negatives`` is filled by the trainer's negative sampler (one sampled
    non-interacted item per target item, following the paper's BPR setup);
    it is ``None`` until then.
    """

    users: np.ndarray
    inputs: np.ndarray
    targets: np.ndarray
    pad_id: int
    negatives: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.users)

    def input_mask(self) -> np.ndarray:
        return self.inputs != self.pad_id

    def target_mask(self) -> np.ndarray:
        return self.targets != self.pad_id


class BatchIterator:
    """Iterate over shuffled mini-batches of sliding-window instances.

    Parameters
    ----------
    instances:
        The full set of training instances.
    batch_size:
        Number of instances per batch; the final batch may be smaller.
    rng:
        Generator for the per-epoch shuffle; pass the trainer's generator
        for reproducible epochs.
    shuffle:
        Disable for deterministic order (used in some tests/analyses).
    """

    def __init__(self, instances: SlidingWindowInstances, batch_size: int,
                 rng: np.random.Generator | None = None, shuffle: bool = True):
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.instances = instances
        self.batch_size = batch_size
        self.rng = rng or np.random.default_rng()
        self.shuffle = shuffle

    def __len__(self) -> int:
        """Number of batches per epoch."""
        total = len(self.instances)
        return (total + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Batch]:
        data = self.instances.shuffled(self.rng) if self.shuffle else self.instances
        total = len(data)
        for start in range(0, total, self.batch_size):
            end = min(start + self.batch_size, total)
            yield Batch(
                users=data.users[start:end],
                inputs=data.inputs[start:end],
                targets=data.targets[start:end],
                pad_id=data.pad_id,
            )
