"""CSR-style per-user seen-item index.

Both halves of the runtime story need "has user u interacted with item
i?" in bulk: the serving engine masks seen items out of score rows and
the BPR negative sampler rejects seen items when drawing negatives.  The
seed code answered it with one Python ``set`` per user — per-element
membership tests in the innermost loops.

:class:`SeenIndex` stores the same information as two flat arrays
(``indptr`` + sorted unique ``items`` per user segment, exactly the CSR
layout the scoring engine introduced for its seen masks), plus a lazily
built globally sorted key array ``user * num_items + item`` that answers
*batched* membership queries with one ``searchsorted`` — no Python loop,
memory proportional to the number of interactions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["SeenIndex"]


class SeenIndex:
    """Immutable per-user seen-item sets in CSR form.

    Parameters
    ----------
    indptr:
        ``(num_users + 1,)`` segment offsets into ``items``.
    items:
        Concatenated per-user item ids, sorted and unique within each
        user's segment.
    num_items:
        Number of real items (ids are in ``[0, num_items)``).
    """

    __slots__ = ("num_users", "num_items", "indptr", "items", "_keys")

    def __init__(self, indptr: np.ndarray, items: np.ndarray, num_items: int):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.items = np.asarray(items, dtype=np.int64)
        self.num_users = int(self.indptr.shape[0] - 1)
        self.num_items = int(num_items)
        self._keys: np.ndarray | None = None

    @classmethod
    def from_histories(cls, histories: Sequence[Sequence[int]],
                       num_items: int) -> "SeenIndex":
        """Build the index from per-user interaction histories."""
        uniques = [
            np.unique(np.asarray(history, dtype=np.int64))
            if len(history) else np.zeros(0, dtype=np.int64)
            for history in histories
        ]
        indptr = np.zeros(len(uniques) + 1, dtype=np.int64)
        if uniques:
            np.cumsum([u.shape[0] for u in uniques], out=indptr[1:])
        items = np.concatenate(uniques) if uniques else np.zeros(0, dtype=np.int64)
        return cls(indptr, items, num_items)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def total(self) -> int:
        """Total number of stored (user, item) pairs."""
        return int(self.items.shape[0])

    def counts(self) -> np.ndarray:
        """Number of distinct seen items per user, shape ``(num_users,)``."""
        return np.diff(self.indptr)

    def user_items(self, user: int) -> np.ndarray:
        """Sorted unique items of ``user`` (a view; empty for unknown users)."""
        if not 0 <= user < self.num_users:
            return np.zeros(0, dtype=np.int64)
        return self.items[self.indptr[user]:self.indptr[user + 1]]

    def user_set(self, user: int) -> set[int]:
        """The seen items of ``user`` as a Python set."""
        return set(self.user_items(user).tolist())

    # ------------------------------------------------------------------ #
    # Batched membership
    # ------------------------------------------------------------------ #
    def _key_array(self) -> np.ndarray:
        if self._keys is None:
            # user-major, per-user-sorted -> globally sorted without a sort.
            users = np.repeat(np.arange(self.num_users, dtype=np.int64),
                              np.diff(self.indptr))
            self._keys = users * np.int64(self.num_items) + self.items
        return self._keys

    def contains(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        """Vectorized membership: ``out[i] = items[i] in seen(users[i])``.

        ``users`` and ``items`` are broadcast-compatible int arrays; users
        outside ``[0, num_users)`` and items outside ``[0, num_items)``
        have (by definition) not been seen.  The item guard also keeps an
        out-of-range id from colliding with an adjacent user's key
        segment in the encoding below.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        users, items = np.broadcast_arrays(users, items)
        result = np.zeros(users.shape, dtype=bool)
        if self.total == 0 or users.size == 0:
            return result
        valid = ((users >= 0) & (users < self.num_users)
                 & (items >= 0) & (items < self.num_items))
        keys = self._key_array()
        queries = users[valid] * np.int64(self.num_items) + items[valid]
        positions = np.searchsorted(keys, queries)
        positions_clipped = np.minimum(positions, keys.shape[0] - 1)
        result[valid] = keys[positions_clipped] == queries
        return result
