"""The three experimental settings of the paper (Section 5.3, Fig. 2).

* **80-20-CUT** — first 70% of each user's sequence for training, next 10%
  for validation, last 20% for testing.
* **80-3-CUT** — same training/validation sets; only the 3 items right
  after the validation set are tested.
* **3-LOS** (leave-3-out) — last 3 items for testing, the 3 items before
  them for validation, everything earlier for training.

All splits are per-user and chronological.  After model selection on the
validation set, the paper retrains on train+validation; the
:meth:`DatasetSplit.train_plus_valid` helper provides those sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import InteractionDataset

__all__ = ["DatasetSplit", "split_cut", "leave_n_out", "split_setting", "SETTINGS"]

SETTINGS = ("80-20-CUT", "80-3-CUT", "3-LOS")


@dataclass
class DatasetSplit:
    """Per-user train/validation/test sequences for one experimental setting.

    All three lists are indexed by user and hold chronologically ordered
    item ids; concatenating ``train[i] + valid[i] + test[i]`` does not
    necessarily recover the full sequence (80-3-CUT discards the items
    after the three test items).
    """

    train: list[list[int]]
    valid: list[list[int]]
    test: list[list[int]]
    num_items: int
    setting: str = ""
    name: str = ""
    metadata: dict = field(default_factory=dict)

    @property
    def num_users(self) -> int:
        return len(self.train)

    def train_plus_valid(self) -> list[list[int]]:
        """Sequences used when retraining for testing (train + validation)."""
        return [tr + va for tr, va in zip(self.train, self.valid)]

    def train_dataset(self) -> InteractionDataset:
        """Training sequences wrapped as an :class:`InteractionDataset`."""
        return InteractionDataset(
            [list(seq) for seq in self.train], self.num_items,
            name=f"{self.name}-train",
        )

    def train_plus_valid_dataset(self) -> InteractionDataset:
        """Train+validation sequences wrapped as a dataset."""
        return InteractionDataset(
            self.train_plus_valid(), self.num_items,
            name=f"{self.name}-train+valid",
        )

    def users_with_test_items(self) -> list[int]:
        """Users that have at least one test item (evaluable users)."""
        return [u for u, seq in enumerate(self.test) if seq]


def split_cut(dataset: InteractionDataset, train_fraction: float = 0.7,
              valid_fraction: float = 0.1,
              test_items: int | None = None) -> DatasetSplit:
    """Fractional chronological split (80-20-CUT and 80-3-CUT).

    Parameters
    ----------
    train_fraction, valid_fraction:
        Fractions of each user's sequence used for training and
        validation; the remainder is the test pool.
    test_items:
        When None, the whole remainder is the test set (80-20-CUT).  When
        an integer ``k``, only the first ``k`` items of the remainder are
        tested (80-3-CUT uses ``k=3``).
    """
    if not 0 < train_fraction < 1 or not 0 <= valid_fraction < 1:
        raise ValueError("fractions must lie in (0, 1)")
    if train_fraction + valid_fraction >= 1:
        raise ValueError("train and validation fractions must leave room for testing")
    if test_items is not None and test_items < 1:
        raise ValueError("test_items must be positive when given")

    train, valid, test = [], [], []
    for seq in dataset.sequences:
        length = len(seq)
        train_end = max(int(round(length * train_fraction)), 1)
        valid_end = max(int(round(length * (train_fraction + valid_fraction))), train_end)
        train_end = min(train_end, length)
        valid_end = min(valid_end, length)
        user_train = seq[:train_end]
        user_valid = seq[train_end:valid_end]
        user_test = seq[valid_end:]
        if test_items is not None:
            user_test = user_test[:test_items]
        train.append(list(user_train))
        valid.append(list(user_valid))
        test.append(list(user_test))

    setting = "80-20-CUT" if test_items is None else f"80-{test_items}-CUT"
    return DatasetSplit(train, valid, test, dataset.num_items,
                        setting=setting, name=dataset.name)


def leave_n_out(dataset: InteractionDataset, test_items: int = 3,
                valid_items: int = 3) -> DatasetSplit:
    """Leave-n-out split (3-LOS with the defaults).

    The last ``test_items`` items of each user form the test set, the
    ``valid_items`` before them the validation set, and everything earlier
    the training set.  Users too short to populate all three parts keep at
    least one training item; their validation/test sets may be shorter.
    """
    if test_items < 1 or valid_items < 0:
        raise ValueError("test_items must be >= 1 and valid_items >= 0")

    train, valid, test = [], [], []
    for seq in dataset.sequences:
        length = len(seq)
        test_start = max(length - test_items, 1)
        valid_start = max(test_start - valid_items, 1)
        train.append(list(seq[:valid_start]))
        valid.append(list(seq[valid_start:test_start]))
        test.append(list(seq[test_start:]))

    return DatasetSplit(train, valid, test, dataset.num_items,
                        setting=f"{test_items}-LOS", name=dataset.name)


def split_setting(dataset: InteractionDataset, setting: str) -> DatasetSplit:
    """Dispatch to the right splitter by paper setting name."""
    setting = setting.upper()
    if setting == "80-20-CUT":
        return split_cut(dataset)
    if setting == "80-3-CUT":
        return split_cut(dataset, test_items=3)
    if setting == "3-LOS":
        return leave_n_out(dataset, test_items=3, valid_items=3)
    raise ValueError(f"unknown experimental setting: {setting!r}; expected one of {SETTINGS}")
