"""On-disk persistence of interaction datasets and splits.

The ``paper`` scale profile generates synthetic analogues with tens of
thousands of users; regenerating them for every run (or re-reading a real
MovieLens/Amazon dump through the preprocessing pipeline) is wasteful.
This module stores an :class:`InteractionDataset` — and optionally a
:class:`DatasetSplit` derived from it — as a single compressed ``.npz``
file with a flat-array encoding (user offsets + concatenated item ids),
so loading is a couple of ``np.load`` slices instead of a generation pass.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.dataset import InteractionDataset
from repro.data.splits import DatasetSplit

__all__ = ["save_dataset", "load_dataset", "save_split", "load_split"]


def _flatten(sequences: list[list[int]]) -> tuple[np.ndarray, np.ndarray]:
    """Encode ragged per-user sequences as (offsets, concatenated items)."""
    lengths = np.asarray([len(seq) for seq in sequences], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    if offsets[-1] == 0:
        flat = np.zeros(0, dtype=np.int64)
    else:
        flat = np.concatenate([np.asarray(seq, dtype=np.int64) for seq in sequences if seq])
    return offsets, flat


def _unflatten(offsets: np.ndarray, flat: np.ndarray) -> list[list[int]]:
    return [flat[offsets[i]:offsets[i + 1]].tolist() for i in range(len(offsets) - 1)]


def _resolve(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz") if path.suffix else path.with_suffix(".npz")
    return path


# --------------------------------------------------------------------------- #
# Datasets
# --------------------------------------------------------------------------- #
def save_dataset(dataset: InteractionDataset, path: str | Path) -> Path:
    """Write ``dataset`` to ``path`` (``.npz`` appended when missing)."""
    path = _resolve(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    offsets, flat = _flatten(dataset.sequences)
    metadata = json.dumps({"name": dataset.name, "num_items": dataset.num_items})
    np.savez_compressed(
        path,
        offsets=offsets,
        items=flat,
        metadata=np.frombuffer(metadata.encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_dataset(path: str | Path) -> InteractionDataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no dataset file at {path}")
    with np.load(path, allow_pickle=False) as archive:
        offsets = archive["offsets"]
        flat = archive["items"]
        metadata = json.loads(archive["metadata"].tobytes().decode("utf-8"))
    sequences = _unflatten(offsets, flat)
    return InteractionDataset.from_sequences(
        sequences, num_items=int(metadata["num_items"]), name=metadata["name"]
    )


# --------------------------------------------------------------------------- #
# Splits
# --------------------------------------------------------------------------- #
def save_split(split: DatasetSplit, path: str | Path) -> Path:
    """Write a :class:`DatasetSplit` (train/valid/test sequences) to ``path``."""
    path = _resolve(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {}
    for part_name in ("train", "valid", "test"):
        offsets, flat = _flatten(getattr(split, part_name))
        payload[f"{part_name}_offsets"] = offsets
        payload[f"{part_name}_items"] = flat
    metadata = json.dumps({"setting": split.setting, "num_items": split.num_items,
                           "name": split.name})
    payload["metadata"] = np.frombuffer(metadata.encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **payload)
    return path


def load_split(path: str | Path) -> DatasetSplit:
    """Load a split previously written by :func:`save_split`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no split file at {path}")
    with np.load(path, allow_pickle=False) as archive:
        metadata = json.loads(archive["metadata"].tobytes().decode("utf-8"))
        parts = {
            part_name: _unflatten(archive[f"{part_name}_offsets"],
                                  archive[f"{part_name}_items"])
            for part_name in ("train", "valid", "test")
        }
    return DatasetSplit(
        name=metadata["name"],
        setting=metadata["setting"],
        num_items=int(metadata["num_items"]),
        train=parts["train"],
        valid=parts["valid"],
        test=parts["test"],
    )
