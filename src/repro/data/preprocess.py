"""Preprocessing protocol of the paper (Section 5.2, following HGN).

The protocol is:

1. convert explicit ratings to implicit feedback — ratings of 4 and 5 are
   positive interactions, lower ratings are dropped from the sequences;
2. iteratively keep only users with at least 10 interactions and items
   with at least 5 interactions;
3. order each user's interactions chronologically;
4. remap user and item identifiers to contiguous integer ranges.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.data.dataset import InteractionDataset, RawInteraction

__all__ = ["PreprocessConfig", "preprocess_interactions", "binarize_ratings"]


@dataclass(frozen=True)
class PreprocessConfig:
    """Knobs of the preprocessing protocol.

    Defaults follow HGN / the HAM paper: users need >= 10 interactions,
    items need >= 5, and a rating counts as positive when >= 4 stars.
    ``implicit`` datasets (Goodreads read-flags) skip the rating threshold.
    """

    min_interactions_per_user: int = 10
    min_interactions_per_item: int = 5
    positive_rating_threshold: float = 4.0
    implicit: bool = False

    def __post_init__(self):
        if self.min_interactions_per_user < 1:
            raise ValueError("min_interactions_per_user must be >= 1")
        if self.min_interactions_per_item < 1:
            raise ValueError("min_interactions_per_item must be >= 1")


def binarize_ratings(interactions: Iterable[RawInteraction],
                     threshold: float = 4.0) -> list[RawInteraction]:
    """Keep interactions whose rating is at least ``threshold``.

    The paper sets ratings 4-5 to 1 and lower ratings to 0; since only
    positive feedback enters the sequences, dropping the low ratings is
    equivalent.
    """
    return [ix for ix in interactions if ix.rating >= threshold]


def _filter_by_frequency(interactions: list[RawInteraction],
                         min_user: int, min_item: int) -> list[RawInteraction]:
    """Iteratively drop rare users/items until both thresholds hold.

    Filtering users can push items below their threshold and vice versa,
    so the filter repeats until a fixed point is reached.
    """
    current = interactions
    while True:
        user_counts = Counter(ix.user for ix in current)
        item_counts = Counter(ix.item for ix in current)
        kept = [
            ix for ix in current
            if user_counts[ix.user] >= min_user and item_counts[ix.item] >= min_item
        ]
        if len(kept) == len(current):
            return kept
        current = kept


def preprocess_interactions(interactions: Sequence[RawInteraction],
                            config: PreprocessConfig | None = None,
                            name: str = "") -> InteractionDataset:
    """Apply the full protocol and return an :class:`InteractionDataset`.

    Returns an empty dataset (0 users) when nothing survives filtering,
    which callers should treat as "dataset unusable".
    """
    config = config or PreprocessConfig()
    interactions = list(interactions)
    if not config.implicit:
        interactions = binarize_ratings(interactions, config.positive_rating_threshold)

    interactions = _filter_by_frequency(
        interactions,
        config.min_interactions_per_user,
        config.min_interactions_per_item,
    )
    if not interactions:
        return InteractionDataset(sequences=[], num_items=1, name=name)

    # Chronological ordering per user; ties keep input order (stable sort).
    by_user: dict = defaultdict(list)
    for ix in interactions:
        by_user[ix.user].append(ix)
    for user_interactions in by_user.values():
        user_interactions.sort(key=lambda ix: ix.timestamp)

    # Contiguous id remapping in first-seen order for determinism.
    item_ids: dict = {}
    for ix in interactions:
        if ix.item not in item_ids:
            item_ids[ix.item] = len(item_ids)

    sequences = []
    for user in sorted(by_user.keys(), key=str):
        sequences.append([item_ids[ix.item] for ix in by_user[user]])

    dataset = InteractionDataset(sequences=sequences, num_items=len(item_ids), name=name)
    dataset.metadata["item_id_map"] = item_ids
    dataset.metadata["preprocess_config"] = config
    return dataset
