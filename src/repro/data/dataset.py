"""Interaction dataset container.

The central data structure of the reproduction: each user's
purchases/ratings in chronological order (the sequence ``S_i`` of the
paper, Section 3), with item ids remapped to ``0..num_items-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["RawInteraction", "InteractionDataset"]


@dataclass(frozen=True)
class RawInteraction:
    """A single user-item interaction before preprocessing.

    ``rating`` follows the source dataset's scale (1-5 stars for Amazon /
    MovieLens / Goodreads explicit feedback); ``timestamp`` orders the
    interactions chronologically.
    """

    user: int | str
    item: int | str
    rating: float = 1.0
    timestamp: float = 0.0


@dataclass
class InteractionDataset:
    """Per-user chronological item sequences.

    Parameters
    ----------
    sequences:
        ``sequences[i]`` is the ordered list of item ids user ``i``
        purchased/rated (the paper's ``S_i``).
    num_items:
        Total number of distinct items ``n``; item ids are in
        ``[0, num_items)``.
    name:
        Human-readable dataset name (e.g. ``"CDs"``).
    """

    sequences: list[list[int]]
    num_items: int
    name: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.num_items <= 0:
            raise ValueError("num_items must be positive")
        for user, seq in enumerate(self.sequences):
            for item in seq:
                if not 0 <= item < self.num_items:
                    raise ValueError(
                        f"item id {item} of user {user} outside [0, {self.num_items})"
                    )

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def num_users(self) -> int:
        """Number of users ``m``."""
        return len(self.sequences)

    @property
    def num_interactions(self) -> int:
        """Total number of user-item interactions (``#intrns`` in Table 2)."""
        return int(sum(len(seq) for seq in self.sequences))

    @property
    def interactions_per_user(self) -> float:
        """Average sequence length (``#intrns/u`` in Table 2)."""
        if self.num_users == 0:
            return 0.0
        return self.num_interactions / self.num_users

    @property
    def interactions_per_item(self) -> float:
        """Average number of users per item (``#u/i`` in Table 2)."""
        return self.num_interactions / self.num_items

    @property
    def density(self) -> float:
        """Fraction of the user-item matrix that is observed."""
        if self.num_users == 0:
            return 0.0
        return self.num_interactions / (self.num_users * self.num_items)

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def sequence(self, user: int) -> list[int]:
        """Return user ``user``'s chronological item sequence."""
        return self.sequences[user]

    def subsequence(self, user: int, start: int, length: int) -> list[int]:
        """The paper's ``S_i(t, l)``: ``length`` items starting at ``start``."""
        if start < 0 or length < 0:
            raise ValueError("start and length must be non-negative")
        return self.sequences[user][start:start + length]

    def __iter__(self) -> Iterator[list[int]]:
        return iter(self.sequences)

    def __len__(self) -> int:
        return self.num_users

    def items_of_user(self, user: int) -> set[int]:
        """Set of distinct items user ``user`` interacted with."""
        return set(self.sequences[user])

    def item_frequencies(self) -> np.ndarray:
        """Number of interactions per item (length ``num_items``)."""
        counts = np.zeros(self.num_items, dtype=np.int64)
        for seq in self.sequences:
            np.add.at(counts, np.asarray(seq, dtype=np.int64), 1)
        return counts

    def user_lengths(self) -> np.ndarray:
        """Sequence length per user."""
        return np.array([len(seq) for seq in self.sequences], dtype=np.int64)

    # ------------------------------------------------------------------ #
    # Construction and transformation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_sequences(cls, sequences: Sequence[Sequence[int]],
                       num_items: int | None = None,
                       name: str = "") -> "InteractionDataset":
        """Build a dataset from raw python sequences.

        ``num_items`` defaults to ``max(item) + 1`` across all sequences.
        """
        sequences = [list(seq) for seq in sequences]
        if num_items is None:
            max_item = max((max(seq) for seq in sequences if seq), default=-1)
            num_items = max_item + 1
        return cls(sequences=sequences, num_items=num_items, name=name)

    def filter_users(self, min_length: int) -> "InteractionDataset":
        """Drop users with fewer than ``min_length`` interactions."""
        kept = [seq for seq in self.sequences if len(seq) >= min_length]
        return InteractionDataset(kept, self.num_items, name=self.name,
                                  metadata=dict(self.metadata))

    def truncate_sequences(self, max_length: int) -> "InteractionDataset":
        """Keep only the most recent ``max_length`` items of every user."""
        if max_length <= 0:
            raise ValueError("max_length must be positive")
        truncated = [seq[-max_length:] for seq in self.sequences]
        return InteractionDataset(truncated, self.num_items, name=self.name,
                                  metadata=dict(self.metadata))

    def summary(self) -> str:
        """One-line summary mirroring a Table 2 row."""
        return (
            f"{self.name or 'dataset'}: {self.num_users} users, "
            f"{self.num_items} items, {self.num_interactions} interactions, "
            f"{self.interactions_per_user:.1f} intrns/u, "
            f"{self.interactions_per_item:.1f} u/i"
        )


def merge_datasets(datasets: Iterable[InteractionDataset], name: str = "merged") -> InteractionDataset:
    """Concatenate the users of several datasets over a shared item space."""
    datasets = list(datasets)
    if not datasets:
        raise ValueError("merge_datasets needs at least one dataset")
    num_items = max(ds.num_items for ds in datasets)
    sequences: list[list[int]] = []
    for ds in datasets:
        sequences.extend([list(seq) for seq in ds.sequences])
    return InteractionDataset(sequences, num_items, name=name)
