"""Dataset statistics (paper Table 2) and item-frequency summaries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import InteractionDataset

__all__ = ["DatasetStatistics", "compute_statistics", "statistics_table"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The five quantities reported per dataset in Table 2."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    interactions_per_user: float
    interactions_per_item: float

    def as_row(self) -> dict[str, float | int | str]:
        """Row dict used by the reporting helpers."""
        return {
            "dataset": self.name,
            "#users": self.num_users,
            "#items": self.num_items,
            "#intrns": self.num_interactions,
            "#intrns/u": round(self.interactions_per_user, 1),
            "#u/i": round(self.interactions_per_item, 1),
        }


def compute_statistics(dataset: InteractionDataset) -> DatasetStatistics:
    """Compute the Table 2 statistics of ``dataset``."""
    return DatasetStatistics(
        name=dataset.name or "dataset",
        num_users=dataset.num_users,
        num_items=dataset.num_items,
        num_interactions=dataset.num_interactions,
        interactions_per_user=dataset.interactions_per_user,
        interactions_per_item=dataset.interactions_per_item,
    )


def statistics_table(datasets: list[InteractionDataset]) -> list[dict]:
    """Table 2 rows for a list of datasets."""
    return [compute_statistics(ds).as_row() for ds in datasets]


def log_frequency_percentiles(dataset: InteractionDataset,
                              num_bins: int = 20) -> tuple[np.ndarray, np.ndarray]:
    """Item-frequency distribution used in Fig. 3.

    Item frequencies are logarithmized and normalized into [0, 1]; the
    function returns the bin centres (log-frequency percentiles) and the
    percentage of items falling into each bin.
    """
    counts = dataset.item_frequencies().astype(np.float64)
    counts = counts[counts > 0]
    if counts.size == 0:
        return np.zeros(num_bins), np.zeros(num_bins)
    log_counts = np.log(counts)
    span = log_counts.max() - log_counts.min()
    if span == 0:
        normalized = np.zeros_like(log_counts)
    else:
        normalized = (log_counts - log_counts.min()) / span
    histogram, edges = np.histogram(normalized, bins=num_bins, range=(0.0, 1.0))
    centres = (edges[:-1] + edges[1:]) / 2.0
    percentages = 100.0 * histogram / counts.size
    return centres, percentages
