"""Loaders for the original on-disk dataset formats.

When the real public datasets are available locally they can be loaded
and preprocessed exactly as in the paper; otherwise the synthetic
analogues in :mod:`repro.data.benchmarks` are used.  Supported formats:

* MovieLens ``ratings.dat`` (``user::item::rating::timestamp``) and
  ``ratings.csv`` (``userId,movieId,rating,timestamp``).
* Amazon ratings CSV (``user,item,rating,timestamp``).
* Goodreads interactions CSV (``user_id,book_id,is_read,rating,...``).
* A generic whitespace/comma separated ``user item [rating] [timestamp]``
  format.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.data.dataset import InteractionDataset, RawInteraction
from repro.data.preprocess import PreprocessConfig, preprocess_interactions

__all__ = [
    "load_movielens",
    "load_amazon_ratings",
    "load_goodreads_interactions",
    "load_generic",
    "load_dataset_file",
]


def _to_dataset(interactions: list[RawInteraction], name: str,
                config: PreprocessConfig | None) -> InteractionDataset:
    return preprocess_interactions(interactions, config=config, name=name)


def load_movielens(path: str | Path, name: str = "MovieLens",
                   config: PreprocessConfig | None = None) -> InteractionDataset:
    """Load a MovieLens ``ratings.dat`` or ``ratings.csv`` file."""
    path = Path(path)
    interactions: list[RawInteraction] = []
    if path.suffix == ".dat":
        with path.open("r", encoding="utf-8", errors="ignore") as handle:
            for line in handle:
                parts = line.strip().split("::")
                if len(parts) < 4:
                    continue
                user, item, rating, timestamp = parts[:4]
                interactions.append(RawInteraction(user, item, float(rating), float(timestamp)))
    else:
        with path.open("r", encoding="utf-8", errors="ignore", newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader, None)
            if header and not header[0].isdigit():
                pass  # skip header row
            else:
                handle.seek(0)
                reader = csv.reader(handle)
            for row in reader:
                if len(row) < 4:
                    continue
                user, item, rating, timestamp = row[:4]
                interactions.append(RawInteraction(user, item, float(rating), float(timestamp)))
    return _to_dataset(interactions, name, config)


def load_amazon_ratings(path: str | Path, name: str = "Amazon",
                        config: PreprocessConfig | None = None) -> InteractionDataset:
    """Load an Amazon ratings-only CSV (``user,item,rating,timestamp``)."""
    path = Path(path)
    interactions: list[RawInteraction] = []
    with path.open("r", encoding="utf-8", errors="ignore", newline="") as handle:
        for row in csv.reader(handle):
            if len(row) < 4:
                continue
            user, item, rating, timestamp = row[:4]
            try:
                interactions.append(RawInteraction(user, item, float(rating), float(timestamp)))
            except ValueError:
                continue  # header or malformed row
    return _to_dataset(interactions, name, config)


def load_goodreads_interactions(path: str | Path, name: str = "Goodreads",
                                config: PreprocessConfig | None = None) -> InteractionDataset:
    """Load a Goodreads interactions CSV.

    Expects at least the columns ``user_id``, ``book_id`` and ``rating``
    (column order is resolved from the header); rows are assumed to be in
    chronological order per user, as in the released dumps, so the row
    index is used as the timestamp.
    """
    path = Path(path)
    interactions: list[RawInteraction] = []
    with path.open("r", encoding="utf-8", errors="ignore", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return _to_dataset([], name, config)
        columns = {column.strip().lower(): i for i, column in enumerate(header)}
        user_col = columns.get("user_id", 0)
        item_col = columns.get("book_id", 1)
        rating_col = columns.get("rating")
        for index, row in enumerate(reader):
            if len(row) <= max(user_col, item_col):
                continue
            rating = 5.0
            if rating_col is not None and len(row) > rating_col:
                try:
                    rating = float(row[rating_col])
                except ValueError:
                    rating = 5.0
            interactions.append(
                RawInteraction(row[user_col], row[item_col], rating, float(index))
            )
    return _to_dataset(interactions, name, config)


def load_generic(path: str | Path, name: str = "dataset",
                 config: PreprocessConfig | None = None) -> InteractionDataset:
    """Load a generic ``user item [rating] [timestamp]`` text file.

    Fields may be separated by whitespace, commas or tabs.  Missing rating
    defaults to 5.0 (positive); missing timestamp defaults to the line
    number (file order = chronological order).
    """
    path = Path(path)
    interactions: list[RawInteraction] = []
    with path.open("r", encoding="utf-8", errors="ignore") as handle:
        for index, line in enumerate(handle):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.replace(",", " ").replace("\t", " ").split()
            if len(parts) < 2:
                continue
            user, item = parts[0], parts[1]
            try:
                rating = float(parts[2]) if len(parts) > 2 else 5.0
            except ValueError:
                continue  # header line
            timestamp = float(parts[3]) if len(parts) > 3 else float(index)
            interactions.append(RawInteraction(user, item, rating, timestamp))
    return _to_dataset(interactions, name, config)


def load_dataset_file(path: str | Path, name: str | None = None,
                      config: PreprocessConfig | None = None) -> InteractionDataset:
    """Dispatch to the right loader based on the file name."""
    path = Path(path)
    name = name or path.stem
    lowered = path.name.lower()
    if lowered.endswith(".dat") or "movielens" in lowered or lowered.startswith("ml-"):
        return load_movielens(path, name=name, config=config)
    if "goodreads" in lowered:
        return load_goodreads_interactions(path, name=name, config=config)
    if "amazon" in lowered or "ratings_" in lowered:
        return load_amazon_ratings(path, name=name, config=config)
    return load_generic(path, name=name, config=config)
