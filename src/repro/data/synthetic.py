"""Synthetic sequential-recommendation data generator.

The six public benchmark datasets of the paper (Amazon CDs/Books,
Goodreads Children/Comics, MovieLens-1M/20M) are not redistributable and
cannot be downloaded in this offline environment.  This module generates
synthetic analogues whose *generative structure* contains exactly the
signals HAM models: per-user long-term preferences, sequential
associations of mixed order, and item synergies — plus a Zipfian item
popularity skew, so the item-frequency analyses (Fig. 3/4) are meaningful.

The generator draws latent vectors for users and items and, at every step
of a user's sequence, scores a random candidate pool with

``score(j) = a_long * p_u·z_j  +  a_high * mean(z_recent)·z_j``
``          +  a_low * z_last·z_j  +  a_syn * (z_last ∘ z_prev)·z_j``
``          +  popularity_bias * log pop_j  +  Gumbel noise``

and consumes the argmax.  The four ``a_*`` coefficients correspond
one-to-one with the factors HAM models (user preference, high-order
association, low-order association, synergy), so ablating a factor in the
model is expected to hurt on data where the corresponding coefficient is
large — which is how the paper's qualitative claims are exercised.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.dataset import InteractionDataset

__all__ = ["SyntheticConfig", "generate_synthetic_dataset"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Configuration of the synthetic sequence generator.

    Parameters
    ----------
    num_users, num_items:
        Size of the generated dataset.
    mean_sequence_length:
        Average interactions per user (``#intrns/u`` of Table 2); actual
        lengths are sampled from a shifted Poisson.
    min_sequence_length:
        Lower bound on sequence lengths (the paper keeps users with >= 10
        interactions, so the analogues respect the same floor).
    latent_dim:
        Dimensionality of the generative latent vectors.
    popularity_skew:
        Zipf exponent of the item popularity prior (0 = uniform).
    long_term_strength, high_order_strength, low_order_strength, synergy_strength:
        Coefficients of the four preference signals described above.
    association_window:
        How many recent items feed the high-order association signal.
    popularity_bias:
        Weight of the ``log pop`` term in the scores.
    noise:
        Scale of the Gumbel noise (higher = noisier, harder dataset).
    candidate_pool:
        Number of candidate items scored per step (popularity-weighted
        sample); keeps generation fast for large item counts.
    seed:
        Seed of the dedicated random generator.
    """

    name: str
    num_users: int
    num_items: int
    mean_sequence_length: float
    min_sequence_length: int = 10
    latent_dim: int = 16
    popularity_skew: float = 1.0
    long_term_strength: float = 1.0
    high_order_strength: float = 1.0
    low_order_strength: float = 1.0
    synergy_strength: float = 0.6
    association_window: int = 4
    popularity_bias: float = 0.3
    noise: float = 1.0
    candidate_pool: int = 64
    seed: int = 0

    def __post_init__(self):
        if self.num_users < 1 or self.num_items < 2:
            raise ValueError("need at least 1 user and 2 items")
        if self.mean_sequence_length < self.min_sequence_length:
            raise ValueError("mean_sequence_length must be >= min_sequence_length")
        if self.candidate_pool < 2:
            raise ValueError("candidate_pool must be >= 2")
        if self.latent_dim < 1:
            raise ValueError("latent_dim must be positive")

    def scaled(self, user_factor: float) -> "SyntheticConfig":
        """Return a copy with the number of users scaled by ``user_factor``."""
        return replace(self, num_users=max(int(round(self.num_users * user_factor)), 1))


def _zipf_weights(num_items: int, exponent: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf-like popularity prior with a random item ordering."""
    ranks = np.arange(1, num_items + 1, dtype=np.float64)
    weights = ranks ** (-exponent) if exponent > 0 else np.ones(num_items)
    rng.shuffle(weights)
    return weights / weights.sum()


def generate_synthetic_dataset(config: SyntheticConfig,
                               rng: np.random.Generator | None = None) -> InteractionDataset:
    """Generate an :class:`InteractionDataset` from ``config``.

    The returned dataset's ``metadata`` keeps the config and the item
    popularity prior so analyses can relate model behaviour back to the
    generative process.
    """
    rng = rng or np.random.default_rng(config.seed)
    dim = config.latent_dim
    scale = 1.0 / np.sqrt(dim)

    item_vectors = rng.normal(0.0, scale, size=(config.num_items, dim))
    popularity = _zipf_weights(config.num_items, config.popularity_skew, rng)
    log_pop = np.log(popularity + 1e-12)

    sequences: list[list[int]] = []
    extra_mean = max(config.mean_sequence_length - config.min_sequence_length, 0.0)

    for _ in range(config.num_users):
        length = config.min_sequence_length + int(rng.poisson(extra_mean))
        user_vector = rng.normal(0.0, scale, size=dim)
        sequence: list[int] = []

        # First item: popularity + long-term preference only.
        first_scores = (
            config.long_term_strength * item_vectors @ user_vector
            + config.popularity_bias * log_pop
            + config.noise * rng.gumbel(size=config.num_items)
        )
        sequence.append(int(np.argmax(first_scores)))

        while len(sequence) < length:
            pool = min(config.candidate_pool, config.num_items)
            candidates = rng.choice(config.num_items, size=pool,
                                    replace=False, p=popularity)
            recent = sequence[-config.association_window:]
            recent_mean = item_vectors[recent].mean(axis=0)
            last = item_vectors[sequence[-1]]
            query = (
                config.long_term_strength * user_vector
                + config.high_order_strength * recent_mean
                + config.low_order_strength * last
            )
            if len(sequence) >= 2:
                previous = item_vectors[sequence[-2]]
                query = query + config.synergy_strength * (last * previous)
            scores = (
                item_vectors[candidates] @ query
                + config.popularity_bias * log_pop[candidates]
                + config.noise * rng.gumbel(size=pool)
            )
            # Avoid immediately repeating the last consumed item.
            scores[candidates == sequence[-1]] = -np.inf
            sequence.append(int(candidates[int(np.argmax(scores))]))

        sequences.append(sequence)

    dataset = InteractionDataset(sequences, config.num_items, name=config.name)
    dataset.metadata["synthetic_config"] = config
    dataset.metadata["popularity"] = popularity
    dataset.metadata["item_vectors_shape"] = item_vectors.shape
    return dataset
