"""Sliding-window training instances (paper Fig. 1 / Fig. 2, Section 5.3).

During training the paper slides a window of size ``n_h + n_p`` item by
item over each user's training sequence: the first ``n_h`` items are the
inputs that generate recommendations and the following ``n_p`` items are
the targets used to compute the recommendation error.

Sequences shorter than ``n_h + n_p`` are left-padded with a dedicated
padding id so that short users still contribute training signal; the
padding id is ``num_items`` (one past the last real item) and models pin
its embedding to zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["SlidingWindowInstances", "build_training_instances", "pad_id_for",
           "pad_histories"]


def pad_id_for(num_items: int) -> int:
    """The padding item id used throughout the reproduction."""
    return num_items


def pad_histories(histories: Sequence[Sequence[int]], length: int, pad_id: int,
                  users: Sequence[int] | None = None) -> np.ndarray:
    """Left-padded matrix of the last ``length`` items of each history.

    This is the one canonical "histories to model inputs" conversion used
    at scoring time (the evaluators, the serving engine and the timing
    harness all funnel through it).

    Parameters
    ----------
    histories:
        Per-user interaction histories.
    length:
        Number of most-recent items kept per history (the model's
        ``input_length``); shorter histories are left-padded.
    pad_id:
        Padding item id (``pad_id_for(num_items)``).
    users:
        Optional row selection: when given, row ``i`` of the result holds
        the padded history of ``histories[users[i]]``.

    Returns
    -------
    ``(len(users or histories), length)`` int64 array.
    """
    if length < 1:
        raise ValueError("length must be positive")
    rows = [histories[user] for user in users] if users is not None else histories
    inputs = np.full((len(rows), length), pad_id, dtype=np.int64)
    for row, history in enumerate(rows):
        recent = history[-length:]
        if len(recent):
            inputs[row, -len(recent):] = recent
    return inputs


@dataclass
class SlidingWindowInstances:
    """Vectorized training instances.

    Attributes
    ----------
    users:
        ``(B,)`` int array — the user of each instance.
    inputs:
        ``(B, n_h)`` int array — the ``n_h`` items generating the
        recommendation (possibly left-padded with :attr:`pad_id`).
    targets:
        ``(B, n_p)`` int array — the next ``n_p`` items (right-padded with
        :attr:`pad_id` when fewer targets exist).
    pad_id:
        Padding item id (== number of real items).
    """

    users: np.ndarray
    inputs: np.ndarray
    targets: np.ndarray
    pad_id: int

    def __post_init__(self):
        if not (len(self.users) == len(self.inputs) == len(self.targets)):
            raise ValueError("users, inputs and targets must have the same length")

    def __len__(self) -> int:
        return len(self.users)

    @property
    def n_h(self) -> int:
        """Number of input items per instance (high-order association order)."""
        return self.inputs.shape[1]

    @property
    def n_p(self) -> int:
        """Number of target items per instance."""
        return self.targets.shape[1]

    def input_mask(self) -> np.ndarray:
        """Boolean ``(B, n_h)`` mask — True where the input item is real."""
        return self.inputs != self.pad_id

    def target_mask(self) -> np.ndarray:
        """Boolean ``(B, n_p)`` mask — True where the target item is real."""
        return self.targets != self.pad_id

    def shuffled(self, rng: np.random.Generator) -> "SlidingWindowInstances":
        """Return a copy with instances permuted (used per epoch)."""
        order = rng.permutation(len(self))
        return SlidingWindowInstances(
            users=self.users[order],
            inputs=self.inputs[order],
            targets=self.targets[order],
            pad_id=self.pad_id,
        )


def _windows_for_sequence(seq: list[int], n_h: int, n_p: int,
                          pad_id: int) -> list[tuple[list[int], list[int]]]:
    """All (input, target) windows of one training sequence."""
    windows: list[tuple[list[int], list[int]]] = []
    length = len(seq)
    if length < 2:
        # A user needs at least one input item and one target item.
        return windows
    if length < n_h + n_p:
        # Single left-padded window covering the whole short sequence.
        split = max(length - n_p, 1)
        inputs = seq[:split]
        targets = seq[split:split + n_p]
        padded_inputs = [pad_id] * (n_h - len(inputs)) + inputs
        padded_targets = targets + [pad_id] * (n_p - len(targets))
        windows.append((padded_inputs, padded_targets))
        return windows
    for start in range(0, length - n_h - n_p + 1):
        inputs = seq[start:start + n_h]
        targets = seq[start + n_h:start + n_h + n_p]
        windows.append((list(inputs), list(targets)))
    return windows


def build_training_instances(sequences: list[list[int]], num_items: int,
                             n_h: int, n_p: int) -> SlidingWindowInstances:
    """Slide the ``n_h + n_p`` window over every user's training sequence.

    Parameters
    ----------
    sequences:
        Per-user training sequences (e.g. ``DatasetSplit.train`` or
        ``DatasetSplit.train_plus_valid()``).
    num_items:
        Number of real items; the padding id is ``num_items``.
    n_h, n_p:
        Window sizes: the number of input items (high-order association
        order) and the number of target items used to compute errors.
    """
    if n_h < 1 or n_p < 1:
        raise ValueError("n_h and n_p must be positive")
    pad_id = pad_id_for(num_items)
    users: list[int] = []
    inputs: list[list[int]] = []
    targets: list[list[int]] = []
    for user, seq in enumerate(sequences):
        for window_inputs, window_targets in _windows_for_sequence(seq, n_h, n_p, pad_id):
            users.append(user)
            inputs.append(window_inputs)
            targets.append(window_targets)
    if not users:
        return SlidingWindowInstances(
            users=np.zeros(0, dtype=np.int64),
            inputs=np.zeros((0, n_h), dtype=np.int64),
            targets=np.zeros((0, n_p), dtype=np.int64),
            pad_id=pad_id,
        )
    return SlidingWindowInstances(
        users=np.asarray(users, dtype=np.int64),
        inputs=np.asarray(inputs, dtype=np.int64),
        targets=np.asarray(targets, dtype=np.int64),
        pad_id=pad_id,
    )
