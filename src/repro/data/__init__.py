"""Datasets, preprocessing, experimental settings and synthetic benchmarks.

The paper evaluates on six public datasets (Amazon CDs/Books, Goodreads
Children/Comics, MovieLens-1M/20M) preprocessed with HGN's protocol and
split under three experimental settings (80-20-CUT, 80-3-CUT, 3-LOS).
This subpackage provides:

* :class:`~repro.data.dataset.InteractionDataset` — per-user chronological
  item sequences with the statistics reported in Table 2.
* :mod:`~repro.data.preprocess` — the HGN preprocessing protocol
  (min-interaction filtering, rating binarization, id remapping).
* :mod:`~repro.data.splits` — the three experimental settings of Fig. 2.
* :mod:`~repro.data.windows` — sliding-window training instances of length
  ``n_h + n_p`` (Fig. 1/Fig. 2).
* :mod:`~repro.data.seen` — CSR-style per-user seen-item index shared by
  the serving engine's score masks and the BPR negative sampler.
* :mod:`~repro.data.synthetic` / :mod:`~repro.data.benchmarks` — synthetic
  analogues of the six benchmark datasets for offline reproduction.
* :mod:`~repro.data.loaders` — parsers for the original on-disk formats,
  used automatically when the real data files are available.
* :mod:`~repro.data.serialization` — save/load datasets and splits as
  compressed ``.npz`` files to avoid regenerating large analogues.
"""

from repro.data.dataset import InteractionDataset, RawInteraction
from repro.data.preprocess import PreprocessConfig, preprocess_interactions
from repro.data.splits import DatasetSplit, leave_n_out, split_cut, split_setting
from repro.data.windows import (
    SlidingWindowInstances,
    build_training_instances,
    pad_histories,
    pad_id_for,
)
from repro.data.batching import BatchIterator
from repro.data.seen import SeenIndex
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset
from repro.data.benchmarks import BENCHMARKS, load_benchmark
from repro.data.stats import DatasetStatistics, compute_statistics
from repro.data.serialization import load_dataset, load_split, save_dataset, save_split

__all__ = [
    "save_dataset",
    "load_dataset",
    "save_split",
    "load_split",
    "InteractionDataset",
    "RawInteraction",
    "PreprocessConfig",
    "preprocess_interactions",
    "DatasetSplit",
    "split_cut",
    "leave_n_out",
    "split_setting",
    "SlidingWindowInstances",
    "build_training_instances",
    "pad_histories",
    "pad_id_for",
    "BatchIterator",
    "SeenIndex",
    "SyntheticConfig",
    "generate_synthetic_dataset",
    "BENCHMARKS",
    "load_benchmark",
    "DatasetStatistics",
    "compute_statistics",
]
