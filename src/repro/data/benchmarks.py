"""Synthetic analogues of the paper's six benchmark datasets (Table 2).

Each preset mirrors the sparsity profile of one of the paper's datasets
(average interactions per user and per item, relative density ordering)
at laptop scale, and carries a signal profile chosen to reflect the
qualitative findings of the paper:

* **CDs** — the sparsest dataset; weak synergy signal (the paper found
  synergies do not help on CDs, Section 6.1.1).
* **Books** — strong long-term user preferences (SASRec is competitive on
  Books precisely because of long-term preferences, Section 6.1.4).
* **Children / Comics** — moderately sparse, strong association and
  synergy signals (largest synergy gains in Tables 11/12); Comics has weak
  long-term preferences (HAMs_m-u slightly beats the full model there,
  Section 6.6).
* **ML-1M / ML-20M** — dense rating datasets with a strong popularity
  skew.

Three scale profiles are provided; ``small`` (the default) runs every
experiment in seconds-to-minutes, ``tiny`` is for unit tests and ``paper``
is a larger profile for overnight runs.  The scale only changes the number
of users, never the per-user statistics.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.data.dataset import InteractionDataset
from repro.data.synthetic import SyntheticConfig, generate_synthetic_dataset

__all__ = ["BENCHMARKS", "BENCHMARK_NAMES", "PAPER_STATISTICS", "SCALES",
           "load_benchmark", "default_scale"]

#: Paper Table 2 statistics: (#users, #items, #interactions, #intrns/u, #u/i)
PAPER_STATISTICS: dict[str, tuple[int, int, int, float, float]] = {
    "cds": (17_052, 35_118, 472_265, 27.7, 13.4),
    "books": (52_406, 41_264, 1_856_747, 35.4, 45.0),
    "children": (48_296, 32_871, 2_784_423, 57.6, 84.7),
    "comics": (34_445, 33_121, 2_411_314, 70.0, 72.8),
    "ml-20m": (129_780, 13_663, 9_926_480, 76.5, 726.5),
    "ml-1m": (5_950, 3_125, 573_726, 96.4, 183.6),
}

#: Synthetic analogue presets at the ``small`` scale.  The signal
#: coefficients were calibrated so that learned sequential models clearly
#: beat popularity/matrix-factorization baselines (as on the real datasets)
#: while the per-dataset profiles preserve the paper's qualitative contrasts
#: (strong long-term preference on Books, weak on Comics, weak synergies on
#: CDs, strong synergies on Children/Comics).
BENCHMARKS: dict[str, SyntheticConfig] = {
    "cds": SyntheticConfig(
        name="CDs", num_users=240, num_items=480, mean_sequence_length=27.7,
        popularity_skew=1.1, long_term_strength=3.0, high_order_strength=2.7,
        low_order_strength=3.0, synergy_strength=0.5, noise=1.1,
        popularity_bias=0.2, candidate_pool=128, seed=101,
    ),
    "books": SyntheticConfig(
        name="Books", num_users=280, num_items=340, mean_sequence_length=35.4,
        popularity_skew=1.0, long_term_strength=5.4, high_order_strength=2.1,
        low_order_strength=2.1, synergy_strength=1.2, noise=0.9,
        popularity_bias=0.2, candidate_pool=128, seed=102,
    ),
    "children": SyntheticConfig(
        name="Children", num_users=260, num_items=280, mean_sequence_length=57.6,
        popularity_skew=0.9, long_term_strength=2.7, high_order_strength=3.6,
        low_order_strength=3.6, synergy_strength=2.4, noise=0.7,
        popularity_bias=0.2, candidate_pool=128, seed=103,
    ),
    "comics": SyntheticConfig(
        name="Comics", num_users=240, num_items=260, mean_sequence_length=70.0,
        popularity_skew=0.9, long_term_strength=1.2, high_order_strength=3.9,
        low_order_strength=3.6, synergy_strength=2.7, noise=0.7,
        popularity_bias=0.2, candidate_pool=128, seed=104,
    ),
    "ml-20m": SyntheticConfig(
        name="ML-20M", num_users=280, num_items=180, mean_sequence_length=76.5,
        popularity_skew=1.2, long_term_strength=3.0, high_order_strength=3.0,
        low_order_strength=1.8, synergy_strength=1.5, noise=0.8,
        popularity_bias=0.2, candidate_pool=128, seed=105,
    ),
    "ml-1m": SyntheticConfig(
        name="ML-1M", num_users=200, num_items=160, mean_sequence_length=96.4,
        popularity_skew=1.2, long_term_strength=3.6, high_order_strength=3.0,
        low_order_strength=2.4, synergy_strength=1.5, noise=0.8,
        popularity_bias=0.2, candidate_pool=128, seed=106,
    ),
}

BENCHMARK_NAMES = tuple(BENCHMARKS.keys())

#: user-count multipliers per scale profile.
SCALES: dict[str, float] = {
    "tiny": 0.3,
    "small": 1.0,
    "paper": 8.0,
}


def default_scale() -> str:
    """Scale profile selected via the ``REPRO_SCALE`` environment variable."""
    scale = os.environ.get("REPRO_SCALE", "small").lower()
    if scale not in SCALES:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(SCALES)}, got {scale!r}")
    return scale


def _canonical(name: str) -> str:
    key = name.lower().replace("_", "-").strip()
    aliases = {
        "amazon-cds": "cds", "amazon-books": "books",
        "goodreads-children": "children", "goodreads-comics": "comics",
        "movielens-1m": "ml-1m", "movielens-20m": "ml-20m",
        "ml1m": "ml-1m", "ml20m": "ml-20m",
    }
    key = aliases.get(key, key)
    if key not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(BENCHMARK_NAMES)}"
        )
    return key


@lru_cache(maxsize=32)
def _load_cached(key: str, scale: str) -> InteractionDataset:
    config = BENCHMARKS[key].scaled(SCALES[scale])
    return generate_synthetic_dataset(config)


def load_benchmark(name: str, scale: str | None = None) -> InteractionDataset:
    """Load (generate) a synthetic benchmark analogue by name.

    Parameters
    ----------
    name:
        One of ``cds, books, children, comics, ml-1m, ml-20m`` (a few
        aliases such as ``Amazon-CDs`` are accepted).
    scale:
        ``tiny``, ``small`` or ``paper``; defaults to the ``REPRO_SCALE``
        environment variable, falling back to ``small``.

    Notes
    -----
    Datasets are cached per (name, scale) within a process, so repeated
    calls in a benchmark session are free.
    """
    key = _canonical(name)
    scale = scale or default_scale()
    if scale not in SCALES:
        raise ValueError(f"scale must be one of {sorted(SCALES)}, got {scale!r}")
    return _load_cached(key, scale)
