"""Hyperparameter configurations.

Two kinds of configuration live here:

* :data:`PAPER_BEST_PARAMETERS` — the exact best hyperparameters the paper
  reports in Appendix Table A2 for HAMs_m, HGN, SASRec and Caser on every
  dataset and setting.  These are kept verbatim for reference and for the
  Table A2 reproduction bench.
* :func:`default_model_hyperparameters` — the laptop-scale equivalents
  used when running the synthetic analogues: embedding dimensions are
  scaled down (the paper uses d up to 400-600; the analogues have only a
  few hundred items) and SASRec's maximum sequence length is capped at the
  analogue sequence lengths, while the structural parameters
  (``n_h``, ``n_l``, ``n_p``, ``p``, filter counts, heads) are preserved.
"""

from __future__ import annotations

import os

from repro.training.config import TrainingConfig

__all__ = [
    "PAPER_BEST_PARAMETERS",
    "default_model_hyperparameters",
    "default_training_config",
    "SMALL_EMBEDDING_DIM",
]

#: Embedding dimension used for laptop-scale runs (paper: 100-600).
SMALL_EMBEDDING_DIM = 32

#: Appendix Table A2 — best parameters tuned on the validation sets.
#: Keys: setting -> method -> dataset -> parameter dict (paper notation).
PAPER_BEST_PARAMETERS: dict[str, dict[str, dict[str, dict[str, int]]]] = {
    # The paper reports identical best parameters for 80-20-CUT and
    # 80-3-CUT (same training/validation split); both keys point to the
    # same values for convenience.
    "80-20-CUT": {
        "HAMs_m": {
            "cds": {"d": 400, "n_h": 5, "n_l": 2, "n_p": 3, "p": 2},
            "books": {"d": 400, "n_h": 9, "n_l": 2, "n_p": 7, "p": 2},
            "children": {"d": 400, "n_h": 6, "n_l": 1, "n_p": 4, "p": 3},
            "comics": {"d": 400, "n_h": 7, "n_l": 2, "n_p": 5, "p": 3},
            "ml-20m": {"d": 400, "n_h": 9, "n_l": 3, "n_p": 2, "p": 3},
            "ml-1m": {"d": 400, "n_h": 7, "n_l": 2, "n_p": 3, "p": 3},
        },
        "HGN": {
            "cds": {"d": 200, "L": 5, "T": 2},
            "books": {"d": 400, "L": 4, "T": 4},
            "children": {"d": 200, "L": 2, "T": 4},
            "comics": {"d": 200, "L": 2, "T": 6},
            "ml-20m": {"d": 100, "L": 5, "T": 3},
            "ml-1m": {"d": 100, "L": 4, "T": 4},
        },
        "SASRec": {
            "cds": {"d": 400, "n": 600, "h": 1},
            "books": {"d": 400, "n": 600, "h": 1},
            "children": {"d": 400, "n": 200, "h": 1},
            "comics": {"d": 400, "n": 400, "h": 1},
            "ml-20m": {"d": 400, "n": 400, "h": 4},
            "ml-1m": {"d": 200, "n": 600, "h": 1},
        },
        "Caser": {
            "cds": {"d": 200, "L": 5, "T": 4, "n_v": 2, "n_h": 16},
            "books": {"d": 200, "L": 6, "T": 4, "n_v": 2, "n_h": 8},
            "children": {"d": 100, "L": 4, "T": 4, "n_v": 2, "n_h": 16},
            "comics": {"d": 100, "L": 4, "T": 4, "n_v": 2, "n_h": 16},
            "ml-20m": {"d": 100, "L": 6, "T": 2, "n_v": 4, "n_h": 8},
            "ml-1m": {"d": 200, "L": 6, "T": 2, "n_v": 2, "n_h": 8},
        },
    },
    "3-LOS": {
        "HAMs_m": {
            "cds": {"d": 400, "n_h": 4, "n_l": 2, "n_p": 7, "p": 2},
            "books": {"d": 400, "n_h": 9, "n_l": 2, "n_p": 9, "p": 2},
            "children": {"d": 400, "n_h": 6, "n_l": 1, "n_p": 4, "p": 3},
            "comics": {"d": 400, "n_h": 7, "n_l": 1, "n_p": 5, "p": 3},
            "ml-20m": {"d": 400, "n_h": 8, "n_l": 3, "n_p": 3, "p": 3},
            "ml-1m": {"d": 400, "n_h": 8, "n_l": 2, "n_p": 2, "p": 3},
        },
        "HGN": {
            "cds": {"d": 200, "L": 4, "T": 3},
            "books": {"d": 400, "L": 2, "T": 6},
            "children": {"d": 100, "L": 2, "T": 5},
            "comics": {"d": 200, "L": 2, "T": 5},
            "ml-20m": {"d": 100, "L": 6, "T": 3},
            "ml-1m": {"d": 100, "L": 3, "T": 4},
        },
        "SASRec": {
            "cds": {"d": 400, "n": 400, "h": 4},
            "books": {"d": 400, "n": 400, "h": 1},
            "children": {"d": 400, "n": 200, "h": 1},
            "comics": {"d": 600, "n": 600, "h": 1},
            "ml-20m": {"d": 400, "n": 400, "h": 4},
            "ml-1m": {"d": 200, "n": 600, "h": 2},
        },
        "Caser": {
            "cds": {"d": 200, "L": 4, "T": 4, "n_v": 2, "n_h": 16},
            "books": {"d": 200, "L": 5, "T": 3, "n_v": 2, "n_h": 8},
            "children": {"d": 200, "L": 4, "T": 4, "n_v": 2, "n_h": 8},
            "comics": {"d": 200, "L": 4, "T": 4, "n_v": 2, "n_h": 8},
            "ml-20m": {"d": 200, "L": 4, "T": 4, "n_v": 2, "n_h": 8},
            "ml-1m": {"d": 200, "L": 5, "T": 2, "n_v": 2, "n_h": 16},
        },
    },
}
PAPER_BEST_PARAMETERS["80-3-CUT"] = PAPER_BEST_PARAMETERS["80-20-CUT"]


def _paper_structure(method: str, dataset: str, setting: str) -> dict[str, int]:
    """Paper Table A2 entry for ``method`` on ``dataset``, empty if absent."""
    table = PAPER_BEST_PARAMETERS.get(setting, {})
    return dict(table.get(method, {}).get(dataset, {}))


def default_model_hyperparameters(method: str, dataset: str = "cds",
                                  setting: str = "80-20-CUT",
                                  embedding_dim: int | None = None) -> dict:
    """Laptop-scale hyperparameters for ``method`` on ``dataset``.

    The structural parameters follow the paper's Table A2 where the method
    appears there; the embedding dimension is scaled down to
    :data:`SMALL_EMBEDDING_DIM` (override with ``embedding_dim`` or the
    ``REPRO_EMBEDDING_DIM`` environment variable), and sequence lengths are
    capped at values compatible with the synthetic analogues.
    """
    dim = embedding_dim or int(os.environ.get("REPRO_EMBEDDING_DIM", SMALL_EMBEDDING_DIM))
    paper = _paper_structure("HAMs_m", dataset, setting)
    n_h = min(paper.get("n_h", 5), 8)
    n_l = min(paper.get("n_l", 2), n_h)
    synergy_order = min(paper.get("p", 2), max(n_h, 1))

    if method in ("HAMm", "HAMx"):
        return {"embedding_dim": dim, "n_h": n_h, "n_l": n_l}
    if method in ("HAMs_m", "HAMs_x"):
        return {"embedding_dim": dim, "n_h": n_h, "n_l": n_l, "synergy_order": synergy_order}
    if method == "HAMs_m-o":
        return {"embedding_dim": dim, "n_h": n_h, "synergy_order": synergy_order}
    if method == "HAMs_m-u":
        return {"embedding_dim": dim, "n_h": n_h, "n_l": n_l, "synergy_order": synergy_order}
    if method == "HGN":
        hgn = _paper_structure("HGN", dataset, setting)
        return {"embedding_dim": dim, "sequence_length": min(hgn.get("L", 5), 8)}
    if method == "SASRec":
        sasrec = _paper_structure("SASRec", dataset, setting)
        heads = sasrec.get("h", 1)
        if dim % heads != 0:
            heads = 1
        # The paper uses n up to 600; the analogue sequences are ~30-100
        # items, so a window of 10 recent items is the scale equivalent.
        return {"embedding_dim": dim, "sequence_length": 10,
                "num_heads": heads, "num_blocks": 2}
    if method == "Caser":
        caser = _paper_structure("Caser", dataset, setting)
        return {"embedding_dim": dim, "sequence_length": min(caser.get("L", 5), 8),
                "num_vertical_filters": caser.get("n_v", 2),
                "num_horizontal_filters": min(caser.get("n_h", 16), 8)}
    if method in ("BPR-MF", "FPMC"):
        return {"embedding_dim": dim}
    if method in ("GRU4Rec", "GRU4Rec++", "NARM", "STAMP", "NextItRec"):
        return {"embedding_dim": dim, "sequence_length": 10}
    if method == "Fossil":
        return {"embedding_dim": dim, "markov_order": min(n_h, 3)}
    if method == "ItemKNN":
        return {"input_length": min(n_h, 5)}
    if method == "MarkovChain":
        return {"order": min(n_h, 3)}
    if method == "POP":
        return {}
    raise KeyError(f"no default hyperparameters for method {method!r}")


def default_n_p(dataset: str = "cds", setting: str = "80-20-CUT") -> int:
    """Targets per training window, following the paper's Table A2."""
    paper = _paper_structure("HAMs_m", dataset, setting)
    return min(paper.get("n_p", 3), 5)


def default_training_config(num_epochs: int | None = None,
                            dataset: str = "cds",
                            setting: str = "80-20-CUT",
                            seed: int = 0) -> TrainingConfig:
    """Training configuration for experiment runs.

    The epoch budget defaults to 12 (override with ``REPRO_BENCH_EPOCHS``);
    learning rate and weight decay follow the paper (1e-3 / 1e-3).
    """
    epochs = num_epochs or int(os.environ.get("REPRO_BENCH_EPOCHS", 12))
    return TrainingConfig(
        num_epochs=epochs,
        batch_size=256,
        learning_rate=1e-3,
        weight_decay=1e-3,
        n_p=default_n_p(dataset, setting),
        eval_every=max(epochs // 3, 1),
        seed=seed,
    )
