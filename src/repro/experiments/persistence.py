"""Persistence of experiment outputs.

Every experiment runner returns ``{"rows": [...], "text": str}``.  The
:class:`ResultsStore` writes those outputs to disk as JSON (plus the
formatted text report), so benchmark runs, CLI runs and notebook
explorations can be compared across time without re-training anything.

Layout on disk::

    <root>/
      <experiment_id>/
        20260614T171530_seed0.json      # rows + metadata
        20260614T171530_seed0.txt       # formatted report

File names embed a UTC timestamp and the seed, so repeated runs never
overwrite each other.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

__all__ = ["SavedResult", "ResultsStore"]


@dataclass(frozen=True)
class SavedResult:
    """One persisted experiment output."""

    experiment_id: str
    path: Path
    metadata: dict[str, Any]
    rows: list[dict]
    text: str

    @property
    def created_at(self) -> str:
        """UTC creation timestamp recorded in the metadata."""
        return self.metadata.get("created_at", "")


class ResultsStore:
    """Directory-backed store of experiment outputs.

    Parameters
    ----------
    root:
        Directory the store writes to (created on first save).
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    # Saving
    # ------------------------------------------------------------------ #
    def save(self, experiment_id: str, output: dict,
             metadata: dict[str, Any] | None = None) -> SavedResult:
        """Persist one experiment ``output`` and return the saved record.

        Parameters
        ----------
        experiment_id:
            Registry id of the experiment (``table3``, ``ext-synergy`` ...).
        output:
            The runner's return value; must contain ``rows`` and ``text``.
        metadata:
            Extra context worth keeping (scale, epochs, seed, git revision).
        """
        if "rows" not in output or "text" not in output:
            raise ValueError("experiment output must contain 'rows' and 'text'")
        record_metadata = dict(metadata or {})
        record_metadata.setdefault(
            "created_at", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
        )
        seed = record_metadata.get("seed", 0)
        stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
        directory = self.root / experiment_id
        directory.mkdir(parents=True, exist_ok=True)

        base = directory / f"{stamp}_seed{seed}"
        path = base.with_suffix(".json")
        counter = 1
        while path.exists():
            path = directory / f"{stamp}_seed{seed}_{counter}.json"
            counter += 1

        payload = {
            "experiment_id": experiment_id,
            "metadata": record_metadata,
            "rows": output["rows"],
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str))
        path.with_suffix(".txt").write_text(output["text"])
        return SavedResult(experiment_id=experiment_id, path=path,
                           metadata=record_metadata, rows=output["rows"],
                           text=output["text"])

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def list(self, experiment_id: str | None = None) -> list[Path]:
        """Paths of saved results, newest last; optionally for one experiment."""
        if not self.root.exists():
            return []
        if experiment_id is not None:
            directories = [self.root / experiment_id]
        else:
            directories = sorted(path for path in self.root.iterdir() if path.is_dir())
        paths: list[Path] = []
        for directory in directories:
            if directory.exists():
                paths.extend(sorted(directory.glob("*.json")))
        return paths

    def load(self, path: str | Path) -> SavedResult:
        """Load one saved result from its JSON path."""
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no saved result at {path}")
        payload = json.loads(path.read_text())
        text_path = path.with_suffix(".txt")
        text = text_path.read_text() if text_path.exists() else ""
        return SavedResult(
            experiment_id=payload["experiment_id"],
            path=path,
            metadata=payload.get("metadata", {}),
            rows=payload.get("rows", []),
            text=text,
        )

    def latest(self, experiment_id: str) -> SavedResult | None:
        """The most recently saved result of one experiment, if any."""
        paths = self.list(experiment_id)
        if not paths:
            return None
        return self.load(paths[-1])
