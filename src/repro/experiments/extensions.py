"""Extension experiments beyond the paper's tables and figures.

These entries register themselves in the same registry as the paper's
experiments (``repro.experiments.registry.EXPERIMENTS``), so the CLI and
the benchmark suite drive them identically:

* ``ext-synergy``   — the synergy aggregation design choice of
  Section 4.2.2 (sum+mean vs the alternatives the paper says it tried).
* ``ext-baselines`` — HAM against the literature-review baselines the
  paper only compares with transitively (GRU4Rec, NARM, STAMP, NextItRec,
  Fossil, count-based references).
* ``ext-settings``  — Section 7.3's argument made measurable: the same
  model under all three settings plus NDCG sliced by test-set size.
* ``ext-beyond``    — beyond-accuracy profile (coverage, Gini, popularity
  bias, novelty) of HAM and the strongest baselines.
"""

from __future__ import annotations

from repro.data.benchmarks import load_benchmark
from repro.data.splits import split_setting
from repro.experiments.overall import run_overall_experiment
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec
from repro.experiments.reporting import format_table

__all__ = [
    "EXTENSION_EXPERIMENT_IDS",
    "EXTENSION_BASELINE_METHODS",
]

#: Methods compared by the ``ext-baselines`` experiment (paper's best HAM
#: variant and strongest baseline next to the literature-review methods).
EXTENSION_BASELINE_METHODS = (
    "HAMs_m", "HGN", "GRU4Rec", "GRU4Rec++", "NARM", "STAMP", "NextItRec",
    "Fossil", "FPMC", "MarkovChain", "ItemKNN", "POP",
)


# --------------------------------------------------------------------------- #
# ext-synergy — aggregation operators of the synergy term
# --------------------------------------------------------------------------- #
def _run_ext_synergy(dataset: str = "cds", scale: str | None = None,
                     epochs: int | None = None, seed: int = 0, **_) -> dict:
    from repro.analysis.synergy_study import run_synergy_aggregation_study

    rows = [entry.as_row()
            for entry in run_synergy_aggregation_study(dataset, scale=scale,
                                                       epochs=epochs, seed=seed)]
    text = format_table(
        rows,
        title=(f"Extension — synergy aggregation operators of HAMs_m on {dataset} "
               "(paper's choice: inner=sum, outer=mean)"),
    )
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# ext-baselines — literature-review baselines
# --------------------------------------------------------------------------- #
def _run_ext_baselines(dataset: str = "cds", setting: str = "80-20-CUT",
                       methods: tuple[str, ...] = EXTENSION_BASELINE_METHODS,
                       scale: str | None = None, epochs: int | None = None,
                       seed: int = 0, **_) -> dict:
    result = run_overall_experiment(dataset, setting, methods=methods,
                                    scale=scale, epochs=epochs, seed=seed)
    rows = []
    for method in methods:
        run = result.runs[method]
        rows.append({
            "method": method,
            "Recall@5": round(run.evaluation.metrics["Recall@5"], 4),
            "Recall@10": round(run.evaluation.metrics["Recall@10"], 4),
            "NDCG@5": round(run.evaluation.metrics["NDCG@5"], 4),
            "NDCG@10": round(run.evaluation.metrics["NDCG@10"], 4),
            "s/user": f"{run.timing.seconds_per_user:.1e}",
        })
    text = format_table(
        rows,
        title=(f"Extension — HAMs_m vs literature-review baselines on {dataset} "
               f"in {setting}"),
    )
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# ext-settings — experimental-setting comparison (Section 7.3)
# --------------------------------------------------------------------------- #
def _run_ext_settings(dataset: str = "cds", method: str = "HAMs_m",
                      scale: str | None = None, epochs: int | None = None,
                      seed: int = 0, **_) -> dict:
    from repro.analysis.settings_comparison import compare_settings, metric_by_test_set_size
    from repro.evaluation.evaluator import RankingEvaluator
    from repro.experiments.configs import default_model_hyperparameters, default_training_config
    from repro.models.registry import create_model
    from repro.training.trainer import Trainer
    import numpy as np

    data = load_benchmark(dataset, scale=scale)
    setting_rows = [row.as_row()
                    for row in compare_settings(data, method=method, dataset_key=dataset,
                                                epochs=epochs, seed=seed)]

    # NDCG inflation by test-set size under 80-20-CUT.
    split = split_setting(data, "80-20-CUT")
    rng = np.random.default_rng(seed)
    hyperparameters = default_model_hyperparameters(method, dataset, "80-20-CUT")
    model = create_model(method, split.num_users, split.num_items, rng=rng, **hyperparameters)
    config = default_training_config(num_epochs=epochs, dataset=dataset,
                                     setting="80-20-CUT", seed=seed)
    Trainer(model, config).fit(split.train_plus_valid())
    evaluation = RankingEvaluator(split, ks=(10,), mode="test").evaluate(model)
    bucket_rows = [bucket.as_row()
                   for bucket in metric_by_test_set_size(split, evaluation, metric="NDCG@10")]

    text = "\n\n".join([
        format_table(setting_rows,
                     title=f"Extension — {method} on {dataset} under the three settings"),
        format_table(bucket_rows,
                     title="Extension — NDCG@10 by test-set size in 80-20-CUT "
                           "(Section 7.3: larger test sets inflate NDCG)"),
    ])
    return {"rows": setting_rows, "bucket_rows": bucket_rows, "text": text}


# --------------------------------------------------------------------------- #
# ext-beyond — beyond-accuracy profile
# --------------------------------------------------------------------------- #
def _run_ext_beyond(dataset: str = "cds", setting: str = "80-20-CUT",
                    methods: tuple[str, ...] = ("HAMs_m", "HGN", "SASRec", "POP"),
                    scale: str | None = None, epochs: int | None = None,
                    seed: int = 0, **_) -> dict:
    from repro.evaluation.coverage import beyond_accuracy_report

    result = run_overall_experiment(dataset, setting, methods=methods,
                                    scale=scale, epochs=epochs, seed=seed)
    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    rows = []
    for method in methods:
        report = beyond_accuracy_report(result.runs[method].model, split, k=10)
        row = {"method": method,
               "Recall@10": round(result.metric(method, "Recall@10"), 4)}
        row.update({name: round(value, 4) for name, value in report.as_row().items()})
        rows.append(row)
    text = format_table(
        rows,
        title=(f"Extension — beyond-accuracy profile (top-10 lists) on {dataset} "
               f"in {setting}"),
    )
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Registration
# --------------------------------------------------------------------------- #
EXTENSION_EXPERIMENT_IDS = ("ext-synergy", "ext-baselines", "ext-settings", "ext-beyond")

EXPERIMENTS.update({
    "ext-synergy": ExperimentSpec(
        "ext-synergy", "Synergy aggregation operators (extension)",
        "Section 4.2.2 / DESIGN.md 3b", _run_ext_synergy),
    "ext-baselines": ExperimentSpec(
        "ext-baselines", "Literature-review baselines (extension)",
        "Section 2 / DESIGN.md 3b", _run_ext_baselines),
    "ext-settings": ExperimentSpec(
        "ext-settings", "Experimental-setting comparison (extension)",
        "Section 7.3", _run_ext_settings),
    "ext-beyond": ExperimentSpec(
        "ext-beyond", "Beyond-accuracy profile (extension)",
        "Section 7.2 / DESIGN.md 3b", _run_ext_beyond),
})
