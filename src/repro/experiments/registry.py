"""Registry of every reproducible table and figure of the paper.

Each entry couples an experiment id (``table2`` ... ``table14``,
``tableA1``, ``tableA2``, ``fig3``, ``fig4``) with a title, the paper
section it comes from, and a runner that produces the measured rows plus a
formatted paper-vs-measured report.  The benchmark suite and the CLI are
thin wrappers over this registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

# Analysis modules are imported lazily inside the runner functions: they
# import repro.experiments.configs themselves, so importing them here would
# create a circular import between the two subpackages.
from repro.data.benchmarks import BENCHMARK_NAMES, PAPER_STATISTICS, load_benchmark
from repro.data.stats import compute_statistics
from repro.experiments import paper_results
from repro.experiments.configs import PAPER_BEST_PARAMETERS
from repro.experiments.overall import run_overall_experiment
from repro.experiments.reporting import format_table, paper_vs_measured_table
from repro.models.registry import PAPER_METHODS

__all__ = ["ExperimentSpec", "EXPERIMENTS", "get_experiment", "list_experiments"]


@dataclass(frozen=True)
class ExperimentSpec:
    """One reproducible table or figure."""

    experiment_id: str
    title: str
    paper_section: str
    runner: Callable[..., dict]

    def run(self, **kwargs) -> dict:
        """Execute the experiment; returns ``{"rows": [...], "text": str}``."""
        return self.runner(**kwargs)


# --------------------------------------------------------------------------- #
# Table 2 — dataset statistics
# --------------------------------------------------------------------------- #
def _run_table2(scale: str | None = None, **_) -> dict:
    rows = []
    for name in BENCHMARK_NAMES:
        dataset = load_benchmark(name, scale=scale)
        stats = compute_statistics(dataset)
        users, items, interactions, per_user, per_item = PAPER_STATISTICS[name]
        rows.append({
            "dataset": stats.name,
            "paper #users": users, "measured #users": stats.num_users,
            "paper #intrns/u": per_user,
            "measured #intrns/u": round(stats.interactions_per_user, 1),
            "paper #u/i": per_item,
            "measured #u/i": round(stats.interactions_per_item, 1),
        })
    text = paper_vs_measured_table(rows, "Table 2 — dataset statistics", decimals=1)
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Tables 3-8 — overall performance
# --------------------------------------------------------------------------- #
def _overall_rows(setting: str, metrics: tuple[str, str], datasets: tuple[str, ...],
                  scale: str | None, epochs: int | None, seed: int) -> list[dict]:
    rows = []
    for metric in metrics:
        for dataset in datasets:
            result = run_overall_experiment(dataset, setting, methods=PAPER_METHODS,
                                            scale=scale, epochs=epochs, seed=seed)
            paper_row = paper_results.OVERALL_PERFORMANCE[setting][metric][dataset]
            row: dict = {"metric": metric, "dataset": dataset}
            for method in PAPER_METHODS:
                row[f"{method} (paper)"] = paper_row[method]
                row[f"{method} (measured)"] = round(result.metric(method, metric), 4)
            measured = result.metric_row(metric)
            row["paper best"] = max(paper_row, key=paper_row.get)
            row["measured best"] = max(measured, key=measured.get)
            rows.append(row)
    return rows


def _make_overall_runner(setting: str, metrics: tuple[str, str], table_id: str):
    def runner(datasets: tuple[str, ...] = tuple(BENCHMARK_NAMES),
               scale: str | None = None, epochs: int | None = None,
               seed: int = 0, **_) -> dict:
        rows = _overall_rows(setting, metrics, datasets, scale, epochs, seed)
        text = paper_vs_measured_table(
            rows, f"{table_id} — overall performance in {setting} ({'/'.join(metrics)})"
        )
        return {"rows": rows, "text": text}
    return runner


# --------------------------------------------------------------------------- #
# Table 9 — improvement summary
# --------------------------------------------------------------------------- #
def _run_table9(datasets: tuple[str, ...] = tuple(BENCHMARK_NAMES),
                settings: tuple[str, ...] = ("80-20-CUT", "80-3-CUT", "3-LOS"),
                scale: str | None = None, epochs: int | None = None,
                seed: int = 0, **_) -> dict:
    from repro.analysis.improvement import improvement_summary

    rows = []
    for setting in settings:
        results = {
            dataset: run_overall_experiment(dataset, setting, methods=PAPER_METHODS,
                                            scale=scale, epochs=epochs, seed=seed)
            for dataset in datasets
        }
        summary = improvement_summary(results)
        for metric, cells in summary.items():
            paper_row = paper_results.IMPROVEMENT_SUMMARY[setting][metric]
            row: dict = {"setting": setting, "metric": metric}
            for cell in cells:
                row[f"{cell.competitor} (paper %)"] = paper_row.get(cell.competitor, "")
                row[f"{cell.competitor} (measured %)"] = round(cell.mean_improvement_percent, 1)
            rows.append(row)
    text = paper_vs_measured_table(rows, "Table 9 — average improvement of HAMs_m (%)", decimals=1)
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Tables 10-12 / A1 — parameter studies
# --------------------------------------------------------------------------- #
def _make_parameter_study_runner(dataset: str, table_id: str):
    def runner(scale: str | None = None, epochs: int | None = None,
               seed: int = 0, sweep: dict | None = None, **_) -> dict:
        from repro.analysis.parameter_study import run_parameter_study

        study = run_parameter_study(dataset, setting="80-20-CUT", sweep=sweep,
                                    scale=scale, epochs=epochs, seed=seed)
        rows = [entry.as_row() for entry in study]
        paper_sweep = paper_results.PARAMETER_STUDY_HAMS_M.get(dataset, {})
        text_parts = [format_table(
            rows, title=f"{table_id} — parameter study of HAMs_m on {dataset} (measured)"
        )]
        paper_rows = [
            {"parameter": parameter, "value": value, "Recall@5": r5, "Recall@10": r10}
            for parameter, entries in paper_sweep.items()
            for value, r5, r10 in entries
        ]
        if paper_rows:
            text_parts.append(format_table(
                paper_rows, title=f"{table_id} — paper-reported sweep (full-scale datasets)"
            ))
        return {"rows": rows, "text": "\n\n".join(text_parts)}
    return runner


def _run_tableA1(scale: str | None = None, epochs: int | None = None,
                 seed: int = 0, **_) -> dict:
    from repro.analysis.parameter_study import run_sasrec_sensitivity

    study = run_sasrec_sensitivity(scale=scale, epochs=epochs, seed=seed)
    rows = [entry.as_row() for entry in study]
    paper_rows = [
        {"parameter": parameter, "value": value,
         "Recall@5": "OOM" if r5 is None else r5,
         "Recall@10": "OOM" if r10 is None else r10}
        for parameter, entries in paper_results.SASREC_SENSITIVITY_COMICS_3LOS.items()
        for value, r5, r10 in entries
    ]
    text = "\n\n".join([
        format_table(rows, title="Table A1 — SASRec sensitivity on Comics in 3-LOS (measured)"),
        format_table(paper_rows, title="Table A1 — paper-reported values"),
    ])
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Table 13 — ablation, Table 14 — run time
# --------------------------------------------------------------------------- #
def _run_table13(datasets: tuple[str, ...] = tuple(BENCHMARK_NAMES),
                 scale: str | None = None, epochs: int | None = None,
                 seed: int = 0, **_) -> dict:
    from repro.analysis.ablation import run_ablation_study

    rows = []
    for dataset in datasets:
        paper_values = paper_results.ABLATION_STUDY.get(dataset, {})
        for entry in run_ablation_study(dataset, scale=scale, epochs=epochs, seed=seed):
            row = entry.as_row()
            paper_recall = paper_values.get(entry.variant)
            if paper_recall:
                row["paper Recall@5"] = paper_recall[0]
                row["paper Recall@10"] = paper_recall[1]
            rows.append(row)
    text = paper_vs_measured_table(rows, "Table 13 — ablation study of HAMs_m in 80-20-CUT")
    return {"rows": rows, "text": text}


def _run_table14(datasets: tuple[str, ...] = tuple(BENCHMARK_NAMES),
                 scale: str | None = None, epochs: int | None = None,
                 seed: int = 0, **_) -> dict:
    from repro.analysis.runtime import runtime_comparison

    results = {
        dataset: run_overall_experiment(dataset, "80-20-CUT", methods=PAPER_METHODS,
                                        scale=scale, epochs=epochs, seed=seed)
        for dataset in datasets
    }
    rows = []
    for entry in runtime_comparison(results):
        row = entry.as_row()
        paper_row = paper_results.RUNTIME_SECONDS_PER_USER.get(entry.dataset, {})
        for method, value in paper_row.items():
            row[f"{method} (paper s/u)"] = f"{value:.1e}"
        rows.append(row)
    text = paper_vs_measured_table(rows, "Table 14 — testing run time per user (seconds)")
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Table A2 — best hyperparameters
# --------------------------------------------------------------------------- #
def _run_tableA2(**_) -> dict:
    rows = []
    for setting in ("80-20-CUT", "3-LOS"):
        for method, per_dataset in PAPER_BEST_PARAMETERS[setting].items():
            for dataset, params in per_dataset.items():
                row = {"setting": setting, "method": method, "dataset": dataset}
                row.update(params)
                rows.append(row)
    text = format_table(rows, title="Table A2 — best hyperparameters reported by the paper")
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Figures 3 and 4
# --------------------------------------------------------------------------- #
def _run_fig3(datasets: tuple[str, ...] | None = None,
              scale: str | None = None, **_) -> dict:
    from repro.analysis.frequency import FIGURE3_DATASETS, item_frequency_distribution

    datasets = datasets or FIGURE3_DATASETS
    distributions = item_frequency_distribution(datasets, scale=scale)
    rows = [row for distribution in distributions for row in distribution.as_rows()]
    summary_rows = [
        {"dataset": distribution.dataset,
         "% items in lower half of log-frequency range": round(distribution.infrequent_mass(), 1)}
        for distribution in distributions
    ]
    text = "\n\n".join([
        format_table(summary_rows, title="Fig. 3 — item frequency distribution (summary)"),
        format_table(rows, title="Fig. 3 — full histograms", decimals=2),
    ])
    return {"rows": rows, "summary_rows": summary_rows, "text": text}


def _run_fig4(datasets: tuple[str, ...] | None = None,
              scale: str | None = None, epochs: int | None = None,
              seed: int = 0, **_) -> dict:
    from repro.analysis.attention_weights import FIGURE4_DATASETS, gate_weight_distribution

    datasets = datasets or FIGURE4_DATASETS
    rows = []
    for dataset in datasets:
        distribution = gate_weight_distribution(dataset, scale=scale, epochs=epochs, seed=seed)
        rows.extend(distribution.as_rows())
    text = format_table(
        rows,
        title="Fig. 4 — HGN instance-gate weight distributions by item-frequency bucket",
    )
    return {"rows": rows, "text": text}


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
EXPERIMENTS: dict[str, ExperimentSpec] = {
    "table2": ExperimentSpec("table2", "Dataset statistics", "Section 5.2", _run_table2),
    "table3": ExperimentSpec("table3", "Overall performance in 80-20-CUT (Recall)",
                             "Section 6.1", _make_overall_runner("80-20-CUT", ("Recall@5", "Recall@10"), "Table 3")),
    "table4": ExperimentSpec("table4", "Overall performance in 80-20-CUT (NDCG)",
                             "Section 6.1", _make_overall_runner("80-20-CUT", ("NDCG@5", "NDCG@10"), "Table 4")),
    "table5": ExperimentSpec("table5", "Overall performance in 80-3-CUT (Recall)",
                             "Section 6.2", _make_overall_runner("80-3-CUT", ("Recall@5", "Recall@10"), "Table 5")),
    "table6": ExperimentSpec("table6", "Overall performance in 80-3-CUT (NDCG)",
                             "Section 6.2", _make_overall_runner("80-3-CUT", ("NDCG@5", "NDCG@10"), "Table 6")),
    "table7": ExperimentSpec("table7", "Overall performance in 3-LOS (Recall)",
                             "Section 6.3", _make_overall_runner("3-LOS", ("Recall@5", "Recall@10"), "Table 7")),
    "table8": ExperimentSpec("table8", "Overall performance in 3-LOS (NDCG)",
                             "Section 6.3", _make_overall_runner("3-LOS", ("NDCG@5", "NDCG@10"), "Table 8")),
    "table9": ExperimentSpec("table9", "Average improvement of HAMs_m", "Section 6.4", _run_table9),
    "table10": ExperimentSpec("table10", "Parameter study of HAMs_m on CDs", "Section 6.5.1",
                              _make_parameter_study_runner("cds", "Table 10")),
    "table11": ExperimentSpec("table11", "Parameter study of HAMs_m on Children", "Section 6.5.2",
                              _make_parameter_study_runner("children", "Table 11")),
    "table12": ExperimentSpec("table12", "Parameter study of HAMs_m on Comics", "Section 6.5.3",
                              _make_parameter_study_runner("comics", "Table 12")),
    "table13": ExperimentSpec("table13", "Ablation study of HAMs_m", "Section 6.6", _run_table13),
    "table14": ExperimentSpec("table14", "Testing run-time performance", "Section 6.7", _run_table14),
    "tableA1": ExperimentSpec("tableA1", "SASRec parameter sensitivity", "Appendix A", _run_tableA1),
    "tableA2": ExperimentSpec("tableA2", "Best hyperparameters", "Appendix B", _run_tableA2),
    "fig3": ExperimentSpec("fig3", "Item frequency distribution", "Section 7.2", _run_fig3),
    "fig4": ExperimentSpec("fig4", "HGN attention weight distributions", "Section 7.2", _run_fig4),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment by id (case-insensitive)."""
    lookup = {spec_id.lower(): spec for spec_id, spec in EXPERIMENTS.items()}
    key = experiment_id.lower()
    if key not in lookup:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return lookup[key]


def list_experiments() -> list[dict]:
    """Summaries of every registered experiment (id, title, paper section)."""
    return [
        {"id": spec.experiment_id, "title": spec.title, "paper section": spec.paper_section}
        for spec in EXPERIMENTS.values()
    ]
