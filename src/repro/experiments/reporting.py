"""Plain-text table formatting for experiment reports.

Every benchmark prints its results as a fixed-width table mirroring the
corresponding paper table, typically with a ``paper`` column (value
reported in the manuscript) next to a ``measured`` column (value obtained
on the synthetic analogue at the chosen scale).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["format_table", "paper_vs_measured_table", "format_float"]


def format_float(value, decimals: int = 4) -> str:
    """Format a numeric cell; pass strings through unchanged."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, (int,)):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{decimals}f}"
    return str(value)


def format_table(rows: list[dict], columns: list[str] | None = None,
                 title: str | None = None, decimals: int = 4) -> str:
    """Render ``rows`` (list of dicts) as a fixed-width text table.

    Parameters
    ----------
    rows:
        One dict per table row; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading printed above the table.
    decimals:
        Number of decimals for float cells.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    columns = columns or list(rows[0].keys())
    rendered = [
        [format_float(row.get(column, ""), decimals) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    def render_line(cells: Iterable[str]) -> str:
        return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_line(columns))
    lines.append(render_line("-" * width for width in widths))
    lines.extend(render_line(line) for line in rendered)
    return "\n".join(lines)


def paper_vs_measured_table(rows: list[dict], title: str,
                            note: str | None = None, decimals: int = 4) -> str:
    """Format a reproduction table and append the standard scale caveat."""
    table = format_table(rows, title=title, decimals=decimals)
    caveat = (
        "note: 'paper' columns are the values reported in the manuscript on the "
        "full public datasets; 'measured' columns come from the synthetic "
        "analogues at laptop scale, so absolute values differ while orderings "
        "and ratios are the reproduced quantities."
    )
    parts = [table, caveat]
    if note:
        parts.append(note)
    return "\n".join(parts)
