"""Overall-performance experiment runner (paper Tables 3-8, reused by 9, 14, Fig. 4).

One *overall run* trains a set of methods on one (dataset, setting) pair
and evaluates them on the test split, mirroring the paper's protocol:
models are trained on train+validation with the selected hyperparameters
and evaluated on all test items of every user (Section 5.3.1).

Runs are cached per process keyed by their full configuration, so the
Recall table, the NDCG table, the improvement summary and the run-time
table of one setting all share a single training pass per method.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.benchmarks import load_benchmark
from repro.data.splits import DatasetSplit, split_setting
from repro.evaluation.evaluator import EvaluationResult, RankingEvaluator
from repro.evaluation.timing import InferenceTiming, measure_inference_time
from repro.experiments.configs import default_model_hyperparameters, default_training_config
from repro.models.base import SequentialRecommender
from repro.models.registry import PAPER_METHODS, create_model
from repro.training.trainer import Trainer, TrainingResult

__all__ = ["MethodRun", "OverallResult", "run_overall_experiment", "clear_cache"]


@dataclass
class MethodRun:
    """Everything produced by training and evaluating one method once."""

    method: str
    evaluation: EvaluationResult
    timing: InferenceTiming
    training: TrainingResult
    model: SequentialRecommender


@dataclass
class OverallResult:
    """All method runs of one (dataset, setting) pair."""

    dataset: str
    setting: str
    runs: dict[str, MethodRun] = field(default_factory=dict)

    def metric(self, method: str, metric: str) -> float:
        """One metric of one method, e.g. ``metric("HAMs_m", "Recall@10")``."""
        return self.runs[method].evaluation.metrics[metric]

    def metric_row(self, metric: str) -> dict[str, float]:
        """{method: value} for one metric across all methods."""
        return {method: run.evaluation.metrics[metric] for method, run in self.runs.items()}

    def per_user(self, method: str, metric: str) -> np.ndarray:
        """Per-user metric values (for significance tests)."""
        return self.runs[method].evaluation.per_user[metric]

    def best_method(self, metric: str) -> str:
        """The method with the highest value of ``metric``."""
        row = self.metric_row(metric)
        return max(row, key=row.get)


_CACHE: dict[tuple, OverallResult] = {}


def clear_cache() -> None:
    """Drop all cached overall runs (used by tests)."""
    _CACHE.clear()


def _train_and_evaluate(method: str, split: DatasetSplit, dataset_key: str,
                        setting: str, epochs: int | None, seed: int) -> MethodRun:
    """Train one method on train+valid and evaluate it on the test split."""
    rng = np.random.default_rng(seed)
    hyperparameters = default_model_hyperparameters(method, dataset_key, setting)
    model = create_model(method, num_users=split.num_users, num_items=split.num_items,
                         rng=rng, **hyperparameters)
    config = default_training_config(num_epochs=epochs, dataset=dataset_key,
                                     setting=setting, seed=seed)
    trainer = Trainer(model, config)
    training = trainer.fit(split.train_plus_valid())

    evaluator = RankingEvaluator(split, ks=(5, 10), mode="test")
    evaluation = evaluator.evaluate(model)
    timing = measure_inference_time(model, evaluator, model_name=method)
    return MethodRun(method=method, evaluation=evaluation, timing=timing,
                     training=training, model=model)


def run_overall_experiment(dataset: str, setting: str,
                           methods: tuple[str, ...] = PAPER_METHODS,
                           scale: str | None = None,
                           epochs: int | None = None,
                           seed: int = 0) -> OverallResult:
    """Train and evaluate ``methods`` on one dataset under one setting.

    Parameters
    ----------
    dataset:
        Benchmark name (``cds`` ... ``ml-1m``).
    setting:
        ``80-20-CUT``, ``80-3-CUT`` or ``3-LOS``.
    methods:
        Method names from the model registry; defaults to the seven
        methods of the paper's comparison tables.
    scale:
        Synthetic-analogue scale profile (defaults to ``REPRO_SCALE``).
    epochs:
        Epoch budget per method (defaults to ``REPRO_BENCH_EPOCHS`` or 12).
    seed:
        Seed for model initialization, shuffling and negative sampling.
    """
    key = (dataset, setting, tuple(methods), scale, epochs, seed)
    if key in _CACHE:
        return _CACHE[key]

    data = load_benchmark(dataset, scale=scale)
    split = split_setting(data, setting)
    result = OverallResult(dataset=dataset, setting=setting)
    for method in methods:
        result.runs[method] = _train_and_evaluate(
            method, split, dataset_key=dataset, setting=setting,
            epochs=epochs, seed=seed,
        )
    _CACHE[key] = result
    return result
