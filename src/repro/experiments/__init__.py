"""Experiment harness: one runnable entry per paper table and figure.

The registry in :mod:`repro.experiments.registry` maps experiment ids
(``table3`` ... ``table14``, ``tableA1``, ``tableA2``, ``fig3``, ``fig4``)
to runner functions; the benchmark suite under ``benchmarks/`` calls these
runners and prints paper-shaped tables with a paper-reported column next
to the measured column.

Extension experiments (``ext-synergy``, ``ext-baselines``, ``ext-settings``,
``ext-beyond``) register themselves into the same registry when
:mod:`repro.experiments.extensions` is imported (which happens here), and
:class:`~repro.experiments.persistence.ResultsStore` persists any
experiment's output to disk.
"""

from repro.experiments.configs import (
    PAPER_BEST_PARAMETERS,
    default_model_hyperparameters,
    default_training_config,
)
from repro.experiments.reporting import format_table, paper_vs_measured_table
from repro.experiments.overall import OverallResult, run_overall_experiment
from repro.experiments.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.extensions import EXTENSION_EXPERIMENT_IDS
from repro.experiments.multiseed import MultiSeedResult, run_multi_seed_experiment
from repro.experiments.persistence import ResultsStore, SavedResult

__all__ = [
    "PAPER_BEST_PARAMETERS",
    "default_model_hyperparameters",
    "default_training_config",
    "format_table",
    "paper_vs_measured_table",
    "OverallResult",
    "run_overall_experiment",
    "EXPERIMENTS",
    "get_experiment",
    "list_experiments",
    "EXTENSION_EXPERIMENT_IDS",
    "MultiSeedResult",
    "run_multi_seed_experiment",
    "ResultsStore",
    "SavedResult",
]
