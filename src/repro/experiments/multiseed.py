"""Multi-seed aggregation of overall experiments.

The paper reports single-run numbers with paired t-tests across users.  A
complementary (and often demanded) robustness check repeats the whole
train/evaluate cycle under several random seeds and reports mean ± std per
method, which separates "method A is better" from "seed luck".  This
module wraps :func:`repro.experiments.overall.run_overall_experiment`
across seeds and aggregates the metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.overall import OverallResult, run_overall_experiment
from repro.models.registry import PAPER_METHODS

__all__ = ["SeedAggregate", "MultiSeedResult", "run_multi_seed_experiment"]


@dataclass(frozen=True)
class SeedAggregate:
    """Mean/std/min/max of one metric for one method over the seeds."""

    method: str
    metric: str
    mean: float
    std: float
    minimum: float
    maximum: float
    num_seeds: int

    def as_row(self) -> dict:
        return {
            "method": self.method,
            "metric": self.metric,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "seeds": self.num_seeds,
        }


@dataclass
class MultiSeedResult:
    """All per-seed runs plus their aggregates for one (dataset, setting)."""

    dataset: str
    setting: str
    seeds: tuple[int, ...]
    per_seed: dict[int, OverallResult]

    def metric_values(self, method: str, metric: str) -> np.ndarray:
        """The metric value of ``method`` under every seed, in seed order."""
        return np.asarray(
            [self.per_seed[seed].metric(method, metric) for seed in self.seeds]
        )

    def aggregate(self, method: str, metric: str) -> SeedAggregate:
        """Mean ± std of one metric for one method across the seeds."""
        values = self.metric_values(method, metric)
        return SeedAggregate(
            method=method, metric=metric,
            mean=float(values.mean()),
            std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
            minimum=float(values.min()), maximum=float(values.max()),
            num_seeds=values.size,
        )

    def aggregates(self, metric: str, methods: tuple[str, ...] | None = None) -> list[SeedAggregate]:
        """Aggregates of every method for one metric (table-ready rows)."""
        methods = methods or tuple(next(iter(self.per_seed.values())).runs)
        return [self.aggregate(method, metric) for method in methods]

    def best_method_counts(self, metric: str) -> dict[str, int]:
        """How many seeds each method wins (ties go to the first max)."""
        counts: dict[str, int] = {}
        for seed in self.seeds:
            winner = self.per_seed[seed].best_method(metric)
            counts[winner] = counts.get(winner, 0) + 1
        return counts


def run_multi_seed_experiment(dataset: str, setting: str,
                              methods: tuple[str, ...] = PAPER_METHODS,
                              seeds: tuple[int, ...] = (0, 1, 2),
                              scale: str | None = None,
                              epochs: int | None = None) -> MultiSeedResult:
    """Repeat the overall experiment under several seeds.

    Each seed controls model initialization, batch shuffling and negative
    sampling; the synthetic dataset itself is fixed (it has its own,
    separate generation seed), so differences across runs isolate the
    training stochasticity.
    """
    if not seeds:
        raise ValueError("at least one seed is required")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    per_seed = {
        seed: run_overall_experiment(dataset, setting, methods=methods,
                                     scale=scale, epochs=epochs, seed=seed)
        for seed in seeds
    }
    return MultiSeedResult(dataset=dataset, setting=setting,
                           seeds=tuple(seeds), per_seed=per_seed)
