"""ANN retrieval harness: recall@k vs latency at catalogue scale.

The exact ``top_k`` is one dense matmul over the catalogue — the cost
every request pays grows linearly with ``num_items``.  This harness
builds the regime where that hurts (a 100k–1M item synthetic catalogue
with clustered structure, the shape real item-embedding tables have),
times exact argpartition retrieval as the baseline, then sweeps the
:class:`~repro.retrieval.index.ANNIndex` probe dial, recording per
setting:

* **p50 latency per query** (and the speedup over exact),
* **measured recall@k** against the exact top-k.

The headline is the best speedup among dial settings that clear the
recall floor (default 0.95) — the number that justifies the two-stage
path.  The catalogue must be *clustered*: an isotropic Gaussian cloud
has no coarse structure for an IVF index to exploit (every bucket
boundary cuts through the query's neighbourhood), so it benchmarks a
catalogue shape that never occurs.  Queries are noisy copies of
catalogue rows — the "user rep near the items they like" geometry the
scoring model produces.

:func:`write_retrieval_report` persists the result as
``benchmarks/results/BENCH_ann.json`` under the shared
:mod:`repro.bench_schema` envelope; ``repro-ham bench-ann`` is the CLI
entry point and ``benchmarks/test_ann_retrieval.py`` regenerates and
guards the artifact.
"""

from __future__ import annotations

import os
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.bench_schema import write_bench_report
from repro.retrieval.index import ANNIndex, RetrievalConfig

__all__ = [
    "RetrievalBenchReport",
    "run_retrieval_benchmark",
    "write_retrieval_report",
    "synthetic_catalogue",
]


def synthetic_catalogue(rng: np.random.Generator, num_items: int, dim: int,
                        n_clusters: int = 400,
                        spread: float = 0.35) -> np.ndarray:
    """A clustered float32 item table of shape ``(num_items, dim)``.

    ``n_clusters`` Gaussian centers with per-item noise of scale
    ``spread`` — the co-purchase/genre structure real embedding tables
    carry, and the structure an IVF coarse quantizer exploits.
    """
    centers = rng.standard_normal((n_clusters, dim)).astype(np.float32)
    assign = rng.integers(0, n_clusters, size=num_items)
    noise = (spread * rng.standard_normal((num_items, dim))).astype(np.float32)
    return centers[assign] + noise


@dataclass(frozen=True)
class RetrievalBenchReport:
    """Exact-vs-ANN measurements of one catalogue sweep."""

    num_items: int
    dim: int
    k: int
    num_queries: int
    cpu_count: int
    recall_floor: float
    #: Seconds spent training the index (build is off the request path).
    build_seconds: float
    #: Exact full-catalogue retrieval, p50 milliseconds per query.
    exact_p50_ms: float
    #: One entry per dial setting: ``{"n_probe": .., "candidate_multiplier":
    #: .., "p50_ms": .., "speedup_x": .., "recall_at_k": ..}``.
    sweep: list[dict] = field(default_factory=list)
    #: Best speedup among settings clearing the recall floor (the
    #: headline), and that setting's dial values.
    best_speedup_x: float = 0.0
    best_recall_at_k: float = 0.0
    best_n_probe: int = 0
    best_candidate_multiplier: int = 0

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        lines = [
            f"ANN retrieval over {self.num_items:,} items (dim {self.dim}, "
            f"k={self.k}, {self.num_queries} queries, {self.cpu_count} "
            f"cores): exact p50 {self.exact_p50_ms:.3f} ms/query, index "
            f"build {self.build_seconds:.1f}s"
        ]
        lines.extend(
            f"  n_probe={entry['n_probe']:>3} x{entry['candidate_multiplier']}: "
            f"p50 {entry['p50_ms']:.3f} ms/query "
            f"({entry['speedup_x']:.1f}x) recall@{self.k} "
            f"{entry['recall_at_k']:.3f}"
            for entry in self.sweep
        )
        lines.append(
            f"  best at recall>={self.recall_floor}: "
            f"{self.best_speedup_x:.1f}x (n_probe={self.best_n_probe}, "
            f"multiplier={self.best_candidate_multiplier}, "
            f"recall {self.best_recall_at_k:.3f})"
        )
        return "\n".join(lines)


def _exact_topk(table: np.ndarray, queries: np.ndarray, k: int) -> np.ndarray:
    scores = queries @ table.T
    partitioned = np.argpartition(-scores, k - 1, axis=1)[:, :k]
    rows = np.arange(queries.shape[0])[:, None]
    order = np.argsort(-scores[rows, partitioned], axis=1, kind="stable")
    return partitioned[rows, order]


def _p50_ms(samples: list[float]) -> float:
    return float(np.percentile(np.asarray(samples), 50) * 1e3)


def run_retrieval_benchmark(num_items: int = 100_000, dim: int = 64,
                            k: int = 10, num_queries: int = 64,
                            n_probes: tuple[int, ...] = (1, 2, 4, 8, 16),
                            candidate_multiplier: int = 8,
                            recall_floor: float = 0.95,
                            seed: int = 0) -> RetrievalBenchReport:
    """Time exact vs ANN retrieval over one synthetic catalogue.

    Every query is measured individually (the single-user latency the
    gateway pays), each dial setting over the same query set, recall
    against the same exact baseline — so the sweep isolates the probe
    dial.  Build parameters are scaled down (3 Lloyd iterations, 10k
    training sample) to keep the harness minutes-scale at 1M items;
    recall is measured, not assumed, so the cheaper build cannot
    overstate the result.
    """
    if num_items < 1000:
        raise ValueError("num_items must be at least 1000 (the regime "
                         "where candidate generation matters)")
    rng = np.random.default_rng(seed)
    table = synthetic_catalogue(rng, num_items, dim)
    query_items = rng.integers(0, num_items, size=num_queries)
    queries = (table[query_items]
               + 0.3 * rng.standard_normal((num_queries, dim))).astype(
                   np.float32)

    config = RetrievalConfig(kmeans_iters=3, train_sample=10_000,
                             candidate_multiplier=candidate_multiplier,
                             seed=seed)
    started = time.perf_counter()
    index = ANNIndex.build(table, config)
    build_seconds = time.perf_counter() - started

    exact_ids = _exact_topk(table, queries, k)
    exact_samples = []
    for row in range(num_queries):
        started = time.perf_counter()
        _exact_topk(table, queries[row:row + 1], k)
        exact_samples.append(time.perf_counter() - started)
    exact_p50 = _p50_ms(exact_samples)

    sweep: list[dict] = []
    for n_probe in n_probes:
        samples = []
        hits = 0
        for row in range(num_queries):
            query = queries[row]
            started = time.perf_counter()
            candidates = index.candidates(query, k, n_probe=n_probe)
            scores = table[candidates] @ query
            width = min(k, candidates.size)
            top = (np.argpartition(-scores, width - 1)[:width]
                   if candidates.size > width
                   else np.arange(candidates.size))
            ranked = candidates[top[np.argsort(-scores[top], kind="stable")]]
            samples.append(time.perf_counter() - started)
            hits += len(set(ranked.tolist()) & set(exact_ids[row].tolist()))
        p50 = _p50_ms(samples)
        sweep.append({
            "n_probe": int(n_probe),
            "candidate_multiplier": int(candidate_multiplier),
            "p50_ms": p50,
            "speedup_x": exact_p50 / p50 if p50 > 0 else 0.0,
            "recall_at_k": hits / (num_queries * k),
        })

    qualifying = [entry for entry in sweep
                  if entry["recall_at_k"] >= recall_floor]
    best = max(qualifying, key=lambda entry: entry["speedup_x"],
               default=None)
    return RetrievalBenchReport(
        num_items=num_items, dim=dim, k=k, num_queries=num_queries,
        cpu_count=os.cpu_count() or 1, recall_floor=recall_floor,
        build_seconds=build_seconds, exact_p50_ms=exact_p50, sweep=sweep,
        best_speedup_x=best["speedup_x"] if best else 0.0,
        best_recall_at_k=best["recall_at_k"] if best else 0.0,
        best_n_probe=best["n_probe"] if best else 0,
        best_candidate_multiplier=(best["candidate_multiplier"]
                                   if best else 0),
    )


def write_retrieval_report(report: RetrievalBenchReport, path) -> None:
    """Persist a report as the ``BENCH_ann.json`` artifact."""
    write_bench_report(path, "ann", report.as_dict(), headline={
        "num_items": report.num_items,
        "exact_p50_ms": report.exact_p50_ms,
        "best_speedup_x": report.best_speedup_x,
        "best_recall_at_k": report.best_recall_at_k,
        "best_n_probe": report.best_n_probe,
        "cpu_count": report.cpu_count,
    })
