"""Two-stage retrieval: ANN candidate generation + exact re-rank.

The serving engine's ``top_k`` is a dense matmul over the whole frozen
candidate table — exact, but linear in catalogue size.  This package
adds the sub-linear first stage: :class:`ANNIndex` (residual IVF-PQ
with an LSH fallback for tiny catalogues, pure NumPy) proposes a few
hundred candidates per request and the engine re-ranks only those with
exact scores.  The quality/latency trade is a per-request dial
(``mode="exact"|"ann"``, ``n_probe``, ``candidate_multiplier``) that
the property-test suite pins: exact mode stays bit-identical, ANN
candidates are deterministic and prefix-nested, so measured recall@k is
monotone in ``n_probe``.

The trained index serializes to named arrays (``ann_*``) that travel
through the :class:`~repro.parallel.shm.SharedArena` (zero-copy shard
attach) and the cluster snapshot frames; see :mod:`repro.retrieval.index`
for the layout and :mod:`repro.retrieval.bench` for the
``BENCH_ann.json`` harness.
"""

from repro.retrieval.index import (
    ANN_KIND_LSH,
    ANN_KIND_PQ,
    ANN_MAGIC,
    ANN_PREFIX,
    ANN_VERSION,
    ANNIndex,
    HEADER_STRUCT,
    RetrievalConfig,
)

__all__ = [
    "ANNIndex",
    "RetrievalConfig",
    "ANN_MAGIC",
    "ANN_VERSION",
    "ANN_KIND_PQ",
    "ANN_KIND_LSH",
    "ANN_PREFIX",
    "HEADER_STRUCT",
]
