"""NumPy-only ANN index over a frozen candidate table.

Every ``top_k`` today is a dense ``(B, d) @ (d, num_items)`` matmul, so
serving latency grows linearly with the catalogue.  This module is the
candidate-generation stage of a two-stage retrieve-then-rank path: the
index selects a few hundred candidate items per request and the exact
engine re-ranks only those, turning the per-request cost from
``O(num_items)`` into ``O(n_probe * bucket + candidates)``.

Two interchangeable index kinds live behind one :class:`ANNIndex`:

**IVF-PQ** (the default at catalogue scale)
    A coarse k-means clustering buckets the items (CSR layout:
    ``bucket_indptr`` / ``bucket_items``); each item's *residual* from
    its bucket centroid is product-quantized into ``pq_subspaces`` uint8
    codes against per-subspace codebooks.  A query ranks buckets by
    centroid inner product, probes the best ``n_probe`` of them, scores
    every probed item with an asymmetric-distance lookup table (one
    ``(M, K)`` table per query, built by a single einsum) and keeps the
    ``candidate_multiplier * k`` best per bucket.  Residual encoding is
    what makes the ADC ranking sharp enough to cut inside a bucket
    without losing the true top-k.

**LSH** (the fallback for tiny catalogues)
    Random-hyperplane signatures hash the items into ``2**lsh_bits``
    buckets; a query probes buckets in Hamming-distance order from its
    own signature and every probed item becomes a candidate.  No
    training, no codebooks — the right trade below
    ``min_pq_items`` where k-means would overfit or fail outright.

Determinism and the recall dial
-------------------------------
Both kinds order buckets with a *stable* argsort and apply a per-bucket
quota that does not depend on ``n_probe``, so the candidate set of a
query at ``n_probe = p`` is a **prefix-nested subset** of the set at any
``p' > p``.  Because the second stage re-ranks candidates with exact
scores, nesting makes measured recall@k monotone non-decreasing in
``n_probe`` — the property the test suite pins.  Every step is plain
deterministic NumPy on the published arrays, so two processes (or two
shard workers, or a remote node fed the index through a snapshot frame)
return identical candidates for the same query.

Transport
---------
:meth:`ANNIndex.to_arrays` flattens the index into a ``{name: ndarray}``
mapping (``ann_``-prefixed, with a struct-packed ``ann_header``) that
travels through the :class:`~repro.parallel.shm.SharedArena` and the
cluster snapshot frames exactly like the engine's own arrays;
:meth:`ANNIndex.from_arrays` rebuilds the index zero-copy from attached
views.  The header bytes and every dtype/shape are pinned by a golden
test so the layout cannot drift silently.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RetrievalConfig",
    "ANNIndex",
    "ANN_MAGIC",
    "ANN_VERSION",
    "ANN_KIND_PQ",
    "ANN_KIND_LSH",
    "ANN_PREFIX",
    "HEADER_STRUCT",
]

#: First bytes of the serialized index header.
ANN_MAGIC = b"ANNX"
ANN_VERSION = 1
ANN_KIND_PQ = 1
ANN_KIND_LSH = 2

#: Key prefix of every index array in an arena / snapshot frame.
ANN_PREFIX = "ann_"

#: Fixed-width header layout: magic, version, kind, reserved, then the
#: integer geometry (num_items, dim, n_buckets, pq_subspaces,
#: pq_centroids, lsh_bits, seed).  Little-endian, no padding — the exact
#: bytes are pinned by the golden-format test.
HEADER_STRUCT = struct.Struct("<4sBBHiiiiiii")


@dataclass(frozen=True)
class RetrievalConfig:
    """Build- and search-time parameters of an :class:`ANNIndex`.

    The searchable dial is ``n_probe`` (buckets probed per query) and
    ``candidate_multiplier`` (ADC survivors per probed bucket, in units
    of ``k``); both defaults can be overridden per request.  The rest
    shapes the trained structure:

    ``n_buckets``
        Coarse k-means buckets; ``None`` picks ``~4 * sqrt(num_items)``
        clamped to ``[8, 4096]``.
    ``pq_subspaces`` / ``pq_centroids``
        Product-quantization geometry (``M`` codes per item against
        ``K``-centroid codebooks; ``K <= 256`` so codes stay uint8).
        ``pq_subspaces`` is reduced to the largest divisor of the
        embedding dim when it does not divide evenly.
    ``kmeans_iters`` / ``train_sample``
        Lloyd iterations and the training subsample per k-means run.
    ``min_pq_items``
        Catalogues smaller than this build the LSH fallback instead —
        k-means with 256 centroids per subspace needs data to train on.
    ``lsh_bits``
        Hyperplanes (and therefore ``2**lsh_bits`` buckets) of the
        fallback index.
    ``seed``
        Seed of every random draw in the build; two builds from the same
        table and config are bit-identical.
    """

    n_buckets: int | None = None
    pq_subspaces: int = 8
    pq_centroids: int = 256
    kmeans_iters: int = 4
    train_sample: int = 20_000
    n_probe: int = 8
    candidate_multiplier: int = 8
    min_pq_items: int = 4096
    lsh_bits: int = 8
    seed: int = 0

    def __post_init__(self):
        if self.n_buckets is not None and self.n_buckets < 1:
            raise ValueError("n_buckets must be positive (or None for auto)")
        if not 1 <= self.pq_centroids <= 256:
            raise ValueError("pq_centroids must be in [1, 256] (uint8 codes)")
        if self.pq_subspaces < 1:
            raise ValueError("pq_subspaces must be positive")
        if self.kmeans_iters < 1:
            raise ValueError("kmeans_iters must be positive")
        if self.n_probe < 1:
            raise ValueError("n_probe must be positive")
        if self.candidate_multiplier < 1:
            raise ValueError("candidate_multiplier must be positive")
        if not 1 <= self.lsh_bits <= 16:
            raise ValueError("lsh_bits must be in [1, 16]")


def _kmeans(rng: np.random.Generator, data: np.ndarray, k: int,
            iters: int) -> np.ndarray:
    """Lloyd's algorithm with matmul distances and vectorized updates.

    Deterministic for a given generator state; empty clusters keep their
    previous centroid (a standard, stable choice).
    """
    k = min(k, data.shape[0])
    centroids = data[rng.choice(data.shape[0], size=k, replace=False)].copy()
    for _ in range(iters):
        d2 = (np.sum(data * data, axis=1)[:, None]
              - 2.0 * (data @ centroids.T)
              + np.sum(centroids * centroids, axis=1)[None, :])
        assign = np.argmin(d2, axis=1)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assign, data)
        counts = np.bincount(assign, minlength=k).astype(data.dtype)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
    return centroids


def _csr_buckets(assign: np.ndarray, n_buckets: int) -> tuple[np.ndarray, np.ndarray]:
    """CSR (indptr, items) of a bucket assignment, stable within buckets."""
    order = np.argsort(assign, kind="stable").astype(np.int64)
    counts = np.bincount(assign, minlength=n_buckets)
    indptr = np.zeros(n_buckets + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, order


def _popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned integer array."""
    table = np.array([bin(value).count("1") for value in range(256)],
                     dtype=np.int64)
    counts = np.zeros(values.shape, dtype=np.int64)
    work = values.astype(np.uint64)
    while work.any():
        counts += table[(work & np.uint64(0xFF)).astype(np.int64)]
        work >>= np.uint64(8)
    return counts


class ANNIndex:
    """Trained ANN candidate generator over one item-embedding table.

    Built with :meth:`build` (which auto-selects IVF-PQ or the LSH
    fallback by catalogue size) or rebuilt from published arrays with
    :meth:`from_arrays`.  The only query entry point is
    :meth:`candidates`; the exact engine owns the re-rank.
    """

    def __init__(self, kind: str, num_items: int, dim: int,
                 config: RetrievalConfig, arrays: dict[str, np.ndarray]):
        if kind not in ("pq", "lsh"):
            raise ValueError(f"unknown index kind {kind!r}")
        self.kind = kind
        self.num_items = int(num_items)
        self.dim = int(dim)
        self.config = config
        self._arrays = arrays
        self.n_buckets = int(arrays["bucket_indptr"].shape[0] - 1)
        if kind == "pq":
            # Derived (never serialized): each item's bucket, needed for
            # reconstruction; inverted from the CSR layout in one pass.
            indptr, items = arrays["bucket_indptr"], arrays["bucket_items"]
            item_bucket = np.empty(self.num_items, dtype=np.int64)
            sizes = np.diff(indptr)
            item_bucket[items] = np.repeat(
                np.arange(self.n_buckets, dtype=np.int64), sizes)
            self._item_bucket = item_bucket

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, table: np.ndarray,
              config: RetrievalConfig | None = None) -> "ANNIndex":
        """Train an index over ``table`` (``(num_items, dim)`` float).

        Catalogues with at least ``config.min_pq_items`` rows get the
        IVF-PQ index; smaller ones the LSH fallback.  Deterministic for
        a fixed ``config.seed``.
        """
        config = config or RetrievalConfig()
        table = np.ascontiguousarray(table)
        if table.ndim != 2:
            raise ValueError("table must be 2-d (num_items, dim)")
        num_items, dim = table.shape
        if num_items < 1:
            raise ValueError("cannot index an empty table")
        if num_items >= config.min_pq_items:
            return cls._build_pq(table, config)
        return cls._build_lsh(table, config)

    @classmethod
    def _build_pq(cls, table: np.ndarray, config: RetrievalConfig) -> "ANNIndex":
        rng = np.random.default_rng(config.seed)
        num_items, dim = table.shape
        n_buckets = config.n_buckets
        if n_buckets is None:
            n_buckets = int(min(4096, max(8, round(4.0 * np.sqrt(num_items)))))
        n_buckets = min(n_buckets, num_items)
        subspaces = config.pq_subspaces
        while dim % subspaces:
            subspaces -= 1
        dsub = dim // subspaces
        centroids_k = min(config.pq_centroids, num_items)

        sample = config.train_sample
        train = (table if num_items <= sample
                 else table[rng.choice(num_items, size=sample, replace=False)])
        centroids = _kmeans(rng, train, n_buckets, config.kmeans_iters)
        n_buckets = centroids.shape[0]
        d2 = (np.sum(table * table, axis=1)[:, None]
              - 2.0 * (table @ centroids.T)
              + np.sum(centroids * centroids, axis=1)[None, :])
        assign = np.argmin(d2, axis=1)
        indptr, items = _csr_buckets(assign, n_buckets)

        # Residual PQ: quantize (item - bucket centroid), not the raw
        # vector.  Residual magnitudes are a cluster radius, not a full
        # embedding norm, so the same uint8 budget buys a much sharper
        # in-bucket ranking.
        residuals = table - centroids[assign]
        codebooks = np.empty((subspaces, centroids_k, dsub), dtype=table.dtype)
        codes = np.empty((num_items, subspaces), dtype=np.uint8)
        for m in range(subspaces):
            sub = residuals[:, m * dsub:(m + 1) * dsub]
            subtrain = (sub if num_items <= sample
                        else sub[rng.choice(num_items, size=sample, replace=False)])
            codebook = _kmeans(rng, subtrain, centroids_k, config.kmeans_iters)
            if codebook.shape[0] < centroids_k:  # tiny tables
                pad = np.zeros((centroids_k - codebook.shape[0], dsub),
                               dtype=codebook.dtype)
                codebook = np.vstack([codebook, pad])
            codebooks[m] = codebook
            d2 = (np.sum(sub * sub, axis=1)[:, None]
                  - 2.0 * (sub @ codebook.T)
                  + np.sum(codebook * codebook, axis=1)[None, :])
            codes[:, m] = np.argmin(d2, axis=1)

        arrays = {
            "centroids": np.ascontiguousarray(centroids),
            "bucket_indptr": indptr,
            "bucket_items": items,
            "codebooks": codebooks,
            "codes": codes,
        }
        return cls("pq", num_items, dim, config, arrays)

    @classmethod
    def _build_lsh(cls, table: np.ndarray, config: RetrievalConfig) -> "ANNIndex":
        rng = np.random.default_rng(config.seed)
        num_items, dim = table.shape
        bits = config.lsh_bits
        hyperplanes = rng.standard_normal((bits, dim)).astype(table.dtype)
        signs = (table @ hyperplanes.T) > 0
        weights = (1 << np.arange(bits, dtype=np.int64))
        assign = (signs @ weights).astype(np.int64)
        indptr, items = _csr_buckets(assign, 1 << bits)
        arrays = {
            "hyperplanes": np.ascontiguousarray(hyperplanes),
            "bucket_indptr": indptr,
            "bucket_items": items,
        }
        return cls("lsh", num_items, dim, config, arrays)

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def bucket_order(self, representation: np.ndarray) -> np.ndarray:
        """All bucket ids, best first, by a *stable* ordering.

        The fixed ordering behind candidate-set nesting: probing
        ``n_probe`` buckets always means the first ``n_probe`` entries
        of this permutation, so a larger ``n_probe`` strictly extends
        the probed prefix.
        """
        representation = np.asarray(representation).reshape(self.dim)
        if self.kind == "pq":
            scores = self._arrays["centroids"] @ representation
            return np.argsort(-scores, kind="stable")
        signs = (self._arrays["hyperplanes"] @ representation) > 0
        weights = (1 << np.arange(self.config.lsh_bits, dtype=np.int64))
        signature = int(signs @ weights)
        distances = _popcount(
            np.bitwise_xor(np.arange(self.n_buckets, dtype=np.int64),
                           signature))
        return np.argsort(distances, kind="stable")

    def candidates(self, representation: np.ndarray, k: int,
                   n_probe: int | None = None,
                   candidate_multiplier: int | None = None,
                   bias: np.ndarray | None = None) -> np.ndarray:
        """Candidate item ids of one query representation.

        Probes the best ``n_probe`` buckets (stable order) and keeps at
        most ``candidate_multiplier * k`` ADC-ranked items per probed
        bucket (PQ; LSH keeps whole buckets).  ``bias`` (the engine's
        per-item bias, real items only) folds into the ADC scores so the
        approximate ranking matches what the exact re-rank will compute.

        For fixed ``k`` / ``candidate_multiplier``, the returned *set*
        is nested across increasing ``n_probe`` — the invariant that
        makes recall@k monotone in the probe dial.
        """
        if k < 1:
            raise ValueError("k must be positive")
        n_probe = self.config.n_probe if n_probe is None else int(n_probe)
        if n_probe < 1:
            raise ValueError("n_probe must be positive")
        multiplier = (self.config.candidate_multiplier
                      if candidate_multiplier is None
                      else int(candidate_multiplier))
        if multiplier < 1:
            raise ValueError("candidate_multiplier must be positive")
        representation = np.asarray(representation).reshape(self.dim)
        order = self.bucket_order(representation)
        indptr = self._arrays["bucket_indptr"]
        bucket_items = self._arrays["bucket_items"]
        quota = multiplier * k

        if self.kind == "pq":
            codebooks = self._arrays["codebooks"]
            codes = self._arrays["codes"]
            centroid_scores = self._arrays["centroids"] @ representation
            subspaces, _, dsub = codebooks.shape
            lut = np.einsum("mkd,md->mk", codebooks,
                            representation.reshape(subspaces, dsub))
            columns = np.arange(subspaces)[None, :]
        chosen: list[np.ndarray] = []
        for bucket in order[:min(n_probe, self.n_buckets)]:
            items = bucket_items[indptr[bucket]:indptr[bucket + 1]]
            if items.size == 0:
                continue
            if self.kind == "pq" and items.size > quota:
                # ADC: approximate score = q . centroid + q . residual
                # (reconstructed per subspace from the LUT), plus bias.
                approx = (lut[columns, codes[items]].sum(axis=1)
                          + centroid_scores[bucket])
                if bias is not None:
                    approx = approx + bias[items]
                keep = np.argpartition(-approx, quota - 1)[:quota]
                items = items[np.sort(keep)]
            chosen.append(items)
        if not chosen:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(chosen).astype(np.int64, copy=False)

    def reconstruct(self, items: np.ndarray) -> np.ndarray:
        """PQ approximation of the given item vectors (PQ indexes only)."""
        if self.kind != "pq":
            raise NotImplementedError("LSH indexes store no reconstruction")
        items = np.asarray(items, dtype=np.int64)
        codebooks = self._arrays["codebooks"]
        codes = self._arrays["codes"][items]
        subspaces, _, dsub = codebooks.shape
        parts = [codebooks[m][codes[:, m]] for m in range(subspaces)]
        residual = np.concatenate(parts, axis=1)
        return self._arrays["centroids"][self._item_bucket[items]] + residual

    # ------------------------------------------------------------------ #
    # Transport (arena / snapshot frames)
    # ------------------------------------------------------------------ #
    def header_bytes(self) -> bytes:
        """The struct-packed fixed-width header (golden-pinned)."""
        kind = ANN_KIND_PQ if self.kind == "pq" else ANN_KIND_LSH
        return HEADER_STRUCT.pack(
            ANN_MAGIC, ANN_VERSION, kind, 0,
            self.num_items, self.dim, self.n_buckets,
            self.config.pq_subspaces, self.config.pq_centroids,
            self.config.lsh_bits, self.config.seed,
        )

    def to_arrays(self, prefix: str = ANN_PREFIX) -> dict[str, np.ndarray]:
        """Flatten the index into transportable named arrays.

        The result drops straight into a
        :meth:`~repro.parallel.shm.SharedArena.publish` mapping or a
        cluster snapshot frame; :meth:`from_arrays` is the inverse.
        Search parameters that are *dials* (``n_probe``,
        ``candidate_multiplier``) ride in the header's config so an
        attached index keeps the builder's defaults.
        """
        payload = {f"{prefix}header": np.frombuffer(self.header_bytes(),
                                                    dtype=np.uint8).copy()}
        for name, value in self._arrays.items():
            payload[f"{prefix}{name}"] = value
        # The two dials travel as a tiny int64 array (the header is
        # geometry only, pinned; dials may evolve without a reformat).
        payload[f"{prefix}dials"] = np.asarray(
            [self.config.n_probe, self.config.candidate_multiplier],
            dtype=np.int64)
        return payload

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray],
                    prefix: str = ANN_PREFIX) -> "ANNIndex":
        """Rebuild an index from :meth:`to_arrays` output (zero-copy).

        Array values may be read-only shared-memory views; the index
        never writes to them.
        """
        header = bytes(np.asarray(arrays[f"{prefix}header"],
                                  dtype=np.uint8).tobytes())
        if len(header) != HEADER_STRUCT.size:
            raise ValueError(
                f"ANN header is {len(header)} bytes, "
                f"expected {HEADER_STRUCT.size}")
        (magic, version, kind_code, _reserved, num_items, dim, n_buckets,
         pq_subspaces, pq_centroids, lsh_bits, seed) = HEADER_STRUCT.unpack(header)
        if magic != ANN_MAGIC:
            raise ValueError(f"bad ANN index magic {magic!r}")
        if version != ANN_VERSION:
            raise ValueError(f"unsupported ANN index version {version}")
        if kind_code == ANN_KIND_PQ:
            kind, names = "pq", ("centroids", "bucket_indptr", "bucket_items",
                                 "codebooks", "codes")
        elif kind_code == ANN_KIND_LSH:
            kind, names = "lsh", ("hyperplanes", "bucket_indptr",
                                  "bucket_items")
        else:
            raise ValueError(f"unknown ANN index kind code {kind_code}")
        dials = np.asarray(arrays[f"{prefix}dials"], dtype=np.int64)
        config = RetrievalConfig(
            n_buckets=n_buckets, pq_subspaces=pq_subspaces,
            pq_centroids=pq_centroids, n_probe=int(dials[0]),
            candidate_multiplier=int(dials[1]), lsh_bits=lsh_bits, seed=seed)
        payload = {name: arrays[f"{prefix}{name}"] for name in names}
        if payload["bucket_indptr"].shape[0] != n_buckets + 1:
            raise ValueError("bucket_indptr does not match the header geometry")
        return cls(kind, num_items, dim, config, payload)

    @staticmethod
    def array_keys(arrays: dict[str, np.ndarray],
                   prefix: str = ANN_PREFIX) -> list[str]:
        """The ``prefix``-keyed entries of a mapping (arena/frame probing)."""
        return sorted(name for name in arrays if name.startswith(prefix))
