"""Durability harness: append/fsync cost, recovery time, compaction.

What does durable state cost, and how fast does it come back?  This
harness measures the three numbers that size a WAL deployment:

* **append throughput per fsync policy** — the same record stream
  appended under ``always`` (every record survives power loss),
  ``interval`` (bounded loss window) and ``never`` (OS flushing):
  what each durability level costs per record;
* **recovery time vs. log length** — cold :class:`~repro.durability.
  wal.WriteAheadLog` opens over logs of growing length, timing the
  full CRC-verifying recovery scan (the router's restart cost);
  recovery of a torn-tail log is verified to keep every record before
  the tear;
* **compaction reclaim** — bytes released by :meth:`~repro.durability.
  wal.WriteAheadLog.compact` once every watermark passed half the log.

:func:`write_durability_report` persists the result as
``benchmarks/results/BENCH_durability.json`` under the unified
:mod:`repro.bench_schema` envelope; ``repro-ham bench-durability`` is
the CLI entry point and ``benchmarks/test_durability_wal.py``
regenerates
and guards the artifact (``chaos_disk`` tier, see
``docs/benchmarks.md``).
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.bench_schema import write_bench_report
from repro.durability.wal import FSYNC_POLICIES, WriteAheadLog, pack_observe

__all__ = ["DurabilityBenchReport", "run_durability_benchmark",
           "write_durability_report"]


@dataclass(frozen=True)
class DurabilityBenchReport:
    """Append/fsync, recovery and compaction measurements of one run."""

    appends: int
    record_bytes: int
    segment_bytes: int
    cpu_count: int
    #: Appends per second under each fsync policy.
    fsync_always_per_s: float
    fsync_interval_per_s: float
    fsync_never_per_s: float
    #: ``always / never`` — what full durability costs per record.
    fsync_cost_x: float
    #: ``[{"records": .., "seconds": .., "records_per_s": ..}, ...]``
    #: — cold recovery scans over logs of growing length.
    recovery_points: list[dict] = field(default_factory=list)
    #: Recovery throughput at the longest log.
    recovery_records_per_s: float = 0.0
    #: A log with a torn tail record recovered every record before the
    #: tear and accepted new appends afterwards.
    torn_tail_recovered: bool = False
    torn_tail_records_recovered: int = 0
    #: Log bytes before compaction and bytes reclaimed once every
    #: watermark passed half the log.
    compact_bytes_before: int = 0
    compact_bytes_reclaimed: int = 0
    compact_reclaim_fraction: float = 0.0

    def as_dict(self) -> dict:
        return asdict(self)

    def summary(self) -> str:
        return (
            f"WAL durability over {self.appends} x {self.record_bytes}-byte "
            f"appends ({self.cpu_count} cores): "
            f"fsync=always {self.fsync_always_per_s:,.0f}/s, "
            f"interval {self.fsync_interval_per_s:,.0f}/s, "
            f"never {self.fsync_never_per_s:,.0f}/s "
            f"({self.fsync_cost_x:.1f}x durability cost); recovery "
            f"{self.recovery_records_per_s:,.0f} records/s, torn tail "
            f"recovered: {self.torn_tail_recovered} "
            f"({self.torn_tail_records_recovered} records kept); "
            f"compaction reclaimed {self.compact_bytes_reclaimed} of "
            f"{self.compact_bytes_before} bytes "
            f"({self.compact_reclaim_fraction:.0%})"
        )


def _append_run(directory: Path, payloads: list[bytes], *, fsync: str,
                segment_bytes: int) -> float:
    wal = WriteAheadLog(directory, fsync=fsync, segment_bytes=segment_bytes)
    try:
        start = time.perf_counter()
        for payload in payloads:
            wal.append(payload)
        return time.perf_counter() - start
    finally:
        wal.close()


def run_durability_benchmark(appends: int = 2000, segment_kb: int = 64,
                             seed: int = 0) -> DurabilityBenchReport:
    """Measure append/fsync throughput, recovery time and reclaim.

    The workload is ``appends`` observe-sized records (the router's
    actual journal payload).  Everything runs in throwaway temp
    directories; nothing of the serving stack is involved — this is the
    storage layer alone.
    """
    if appends < 8:
        raise ValueError("appends must be at least 8")
    segment_bytes = int(segment_kb) * 1024
    payloads = [pack_observe(i, i * 31 + seed) for i in range(appends)]
    record_bytes = len(payloads[0])

    with tempfile.TemporaryDirectory(prefix="repro-durability-") as tmp:
        tmp = Path(tmp)

        # ---- append throughput per fsync policy ---------------------- #
        per_s = {}
        for policy in FSYNC_POLICIES:
            seconds = _append_run(tmp / f"wal-{policy}", payloads,
                                  fsync=policy, segment_bytes=segment_bytes)
            per_s[policy] = appends / seconds if seconds > 0 else float("inf")

        # ---- recovery time vs. log length ---------------------------- #
        recovery_points = []
        for fraction in (4, 2, 1):
            length = appends // fraction
            directory = tmp / f"recover-{length}"
            wal = WriteAheadLog(directory, fsync="never",
                                segment_bytes=segment_bytes)
            for payload in payloads[:length]:
                wal.append(payload)
            wal.close()
            start = time.perf_counter()
            reopened = WriteAheadLog(directory, fsync="never",
                                     segment_bytes=segment_bytes)
            seconds = time.perf_counter() - start
            recovered = reopened.stats()["recovered_records"]
            reopened.close()
            recovery_points.append({
                "records": int(recovered),
                "seconds": seconds,
                "records_per_s": recovered / seconds if seconds > 0
                else float("inf"),
            })
        recovery_records_per_s = recovery_points[-1]["records_per_s"]

        # ---- torn-tail recovery correctness -------------------------- #
        torn_dir = tmp / "torn"
        wal = WriteAheadLog(torn_dir, fsync="never",
                            segment_bytes=1 << 30)  # single segment
        for payload in payloads:
            wal.append(payload)
        wal.close()
        segment = next(iter(sorted(torn_dir.iterdir())))
        data = segment.read_bytes()
        segment.write_bytes(data[:-(record_bytes // 2)])  # tear last record
        reopened = WriteAheadLog(torn_dir, fsync="never")
        torn_recovered = int(reopened.stats()["recovered_records"])
        torn_ok = (torn_recovered == appends - 1
                   and reopened.append(payloads[0]) == appends - 1)
        reopened.close()

        # ---- compaction reclaim -------------------------------------- #
        # Size segments so the log spans ~8 of them regardless of the
        # workload size; compacting at the halfway watermark then
        # reclaims close to half the bytes.
        compact_dir = tmp / "compact"
        framed = record_bytes + 12  # payload + record header
        wal = WriteAheadLog(compact_dir, fsync="never",
                            segment_bytes=max(framed * appends // 8, framed))
        for payload in payloads:
            wal.append(payload)
        before = int(wal.stats()["bytes"])
        result = wal.compact(keep_from_seq=appends // 2)
        reclaimed = int(result["bytes_reclaimed"])
        wal.close()

    return DurabilityBenchReport(
        appends=appends,
        record_bytes=record_bytes,
        segment_bytes=segment_bytes,
        cpu_count=os.cpu_count() or 1,
        fsync_always_per_s=float(per_s["always"]),
        fsync_interval_per_s=float(per_s["interval"]),
        fsync_never_per_s=float(per_s["never"]),
        fsync_cost_x=float(per_s["never"] / per_s["always"])
        if per_s["always"] > 0 else float("inf"),
        recovery_points=recovery_points,
        recovery_records_per_s=float(recovery_records_per_s),
        torn_tail_recovered=bool(torn_ok),
        torn_tail_records_recovered=torn_recovered,
        compact_bytes_before=before,
        compact_bytes_reclaimed=reclaimed,
        compact_reclaim_fraction=float(reclaimed / before) if before else 0.0,
    )


def write_durability_report(report: DurabilityBenchReport, path) -> None:
    """Persist a report as the ``BENCH_durability.json`` artifact."""
    write_bench_report(path, "durability", report.as_dict(), headline={
        "fsync_always_per_s": report.fsync_always_per_s,
        "fsync_never_per_s": report.fsync_never_per_s,
        "recovery_records_per_s": report.recovery_records_per_s,
        "torn_tail_recovered": report.torn_tail_recovered,
        "compact_reclaim_fraction": report.compact_reclaim_fraction,
        "cpu_count": report.cpu_count,
    })
