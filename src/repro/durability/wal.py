"""Append-only write-ahead log with CRC-framed records and recovery.

The durable backbone of the serving tier's replay state: a
:class:`WriteAheadLog` turns "append this small record and survive a
crash" into a contract —

* **Framing** — every record is ``magic | u32 length | u32 CRC32 |
  payload`` (:data:`RECORD_MAGIC`, little-endian, pinned by a golden
  test the way the cluster wire protocol is).  The CRC covers the
  payload, so a torn tail *and* a silently flipped bit are both
  detected on the next scan.
* **Segments** — records append to numbered segment files
  (``wal-<first_seq>.log``); a segment that outgrows
  ``segment_bytes`` is sealed (fsynced) and a new one started.  Whole
  sealed segments are the unit of :meth:`compact`.
* **Fsync policy** — ``"always"`` fsyncs every append (every
  acknowledged record survives power loss), ``"interval"`` fsyncs at
  most every ``fsync_interval_s`` (bounded loss window, much higher
  throughput), ``"never"`` leaves flushing to the OS (crash-safe
  against *process* death only).  Rotation and :meth:`close` always
  seal with an fsync.
* **Recovery** — opening a directory scans every segment in order and
  replays each intact record; the first torn or corrupt record ends
  the scan: the segment is truncated back to its last intact record
  and any later segments are dropped.  Recovery never raises on
  corruption — a crashed writer must be restartable from exactly what
  it managed to make durable.
* **Sequence numbers** — records are numbered densely across segments
  and survive compaction (a segment's first sequence is encoded in its
  filename), so higher layers can use them as stable watermarks: the
  :class:`~repro.cluster.router.ClusterRouter` journals observes and
  per-node watermarks here and rebuilds its replay state bit-for-bit
  after a SIGKILL.

Write faults (EIO/ENOSPC, torn writes) surface as
:class:`WalWriteError` after the partial append has been truncated
away — a failed append never corrupts the log for the records before
it.  Fault injection plugs in via
:class:`~repro.durability.diskfaults.DiskFaultInjector`.
"""

from __future__ import annotations

import io
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Iterator

from repro.durability.diskfaults import DiskFaultInjector, SimulatedCrash

__all__ = [
    "FSYNC_POLICIES",
    "RECORD_HEADER",
    "RECORD_MAGIC",
    "WalCompactedError",
    "WalWriteError",
    "WriteAheadLog",
    "pack_observe",
    "unpack_observe",
]

#: Leading magic of every WAL record ("Write-Ahead Log v1").
RECORD_MAGIC = b"WAL1"

#: Record header: magic, u32 payload length, u32 CRC32 of the payload
#: (little-endian).  Pinned by the golden framing test — logs written
#: today must stay replayable by every future version.
RECORD_HEADER = struct.Struct("<4sII")

#: The supported ``fsync`` policies of :class:`WriteAheadLog`.
FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 1 << 20


class WalWriteError(OSError):
    """An append could not be made durable (disk full, I/O error).

    Wraps the underlying ``OSError`` (``errno`` preserved) and names
    the segment path.  The log itself stays intact: the partial append
    is truncated away before this is raised, so every previously
    acknowledged record is still replayable.
    """

    def __init__(self, path: Path, cause: OSError):
        super().__init__(cause.errno or 0,
                         f"WAL append to {path} failed: {cause}")
        self.path = path
        self.__cause__ = cause


class WalCompactedError(RuntimeError):
    """A replay asked for sequence numbers that compaction removed.

    Raised by the router's catch-up when a node's watermark points
    below the compaction horizon — the entries it needs are gone, so
    the node cannot be brought current by replay (it must bootstrap
    from a live peer's snapshot instead).
    """


def pack_observe(user: int, item: int) -> bytes:
    """Encode one observed interaction as a WAL record payload."""
    return b"O" + struct.pack("<qq", int(user), int(item))


def unpack_observe(payload: bytes) -> tuple[int, int]:
    """Decode a :func:`pack_observe` payload back to ``(user, item)``."""
    if len(payload) != 17 or payload[:1] != b"O":
        raise ValueError(f"not an observe record: {payload[:8]!r}")
    user, item = struct.unpack("<qq", payload[1:])
    return int(user), int(item)


def _segment_path(directory: Path, first_seq: int) -> Path:
    return directory / f"{_SEGMENT_PREFIX}{first_seq:020d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(path: Path) -> int | None:
    name = path.name
    if not (name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)):
        return None
    digits = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    if not digits.isdigit():
        return None
    return int(digits)


class _Segment:
    """One on-disk segment: path, first sequence, record count, size."""

    __slots__ = ("path", "first_seq", "records", "size")

    def __init__(self, path: Path, first_seq: int, records: int = 0,
                 size: int = 0):
        self.path = path
        self.first_seq = first_seq
        self.records = records
        self.size = size

    @property
    def end_seq(self) -> int:
        """One past the last sequence number stored in this segment."""
        return self.first_seq + self.records


class WriteAheadLog:
    """Append-only, segmented, CRC-framed log under one directory.

    Parameters
    ----------
    directory:
        Log directory (created if missing).  Opening it runs recovery:
        every intact record is counted, a torn or corrupt tail is
        truncated away, and appends resume at the next sequence number.
    segment_bytes:
        Rotation threshold; a segment at or past it is sealed and a new
        one started on the next append.
    fsync:
        ``"always"`` / ``"interval"`` / ``"never"`` — see the module
        docstring for the durability each buys.
    fsync_interval_s:
        Maximum seconds between fsyncs under the ``"interval"`` policy.
    fault_injector:
        Optional deterministic disk fault injector (``chaos_disk``).
    """

    def __init__(self, directory: str | Path, *,
                 segment_bytes: int = DEFAULT_SEGMENT_BYTES,
                 fsync: str = "always", fsync_interval_s: float = 0.05,
                 fault_injector: DiskFaultInjector | None = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"fsync must be one of {FSYNC_POLICIES}, got {fsync!r}")
        if segment_bytes < RECORD_HEADER.size + 1:
            raise ValueError("segment_bytes is smaller than one record")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.fsync_policy = fsync
        self.fsync_interval_s = float(fsync_interval_s)
        self._injector = fault_injector
        self._lock = threading.RLock()
        self._handle: io.FileIO | None = None
        self._last_sync = 0.0
        self._closed = False

        self._stats = {
            "appends": 0,
            "syncs": 0,
            "recovered_records": 0,
            "truncated_tail_bytes": 0,
            "dropped_segments": 0,
            "compactions": 0,
            "segments_deleted": 0,
            "bytes_reclaimed": 0,
        }

        self._segments: list[_Segment] = []
        self._recover()
        if not self._segments:
            self._segments.append(_Segment(_segment_path(self.directory, 0), 0))
        self._open_active()

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def _recover(self) -> None:
        """Scan existing segments; truncate at the first torn/corrupt record.

        Every intact record before the damage is preserved and counted;
        the damaged segment is truncated back to its last intact record
        and all later segments are dropped (they postdate the
        corruption, so their contents cannot be trusted to be
        contiguous with the surviving prefix).
        """
        paths = sorted(
            (path for path in self.directory.iterdir()
             if _segment_first_seq(path) is not None),
            key=lambda path: _segment_first_seq(path))
        corrupt = False
        for index, path in enumerate(paths):
            if corrupt:
                self._stats["dropped_segments"] += 1
                self._stats["bytes_reclaimed"] += path.stat().st_size
                path.unlink()
                continue
            first_seq = _segment_first_seq(path)
            records, good_bytes, total_bytes = self._scan_segment(path)
            if good_bytes < total_bytes:
                corrupt = True
                self._stats["truncated_tail_bytes"] += total_bytes - good_bytes
                with open(path, "r+b") as handle:
                    handle.truncate(good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
            self._stats["recovered_records"] += records
            self._segments.append(
                _Segment(path, first_seq, records, good_bytes))

    @staticmethod
    def _scan_segment(path: Path) -> tuple[int, int, int]:
        """``(records, good_bytes, total_bytes)`` of one segment file.

        ``good_bytes`` is the offset just past the last intact record —
        the truncation point when it is short of ``total_bytes``.
        """
        data = path.read_bytes()
        offset = 0
        records = 0
        while True:
            if offset + RECORD_HEADER.size > len(data):
                break  # clean EOF or torn header
            magic, length, crc = RECORD_HEADER.unpack_from(data, offset)
            if magic != RECORD_MAGIC:
                break  # corrupt header
            start = offset + RECORD_HEADER.size
            end = start + length
            if end > len(data):
                break  # torn payload
            if zlib.crc32(data[start:end]) != crc:
                break  # flipped bit
            offset = end
            records += 1
        return records, offset, len(data)

    # ------------------------------------------------------------------ #
    # Appending
    # ------------------------------------------------------------------ #
    @property
    def _active(self) -> _Segment:
        return self._segments[-1]

    @property
    def next_seq(self) -> int:
        """Sequence number the next :meth:`append` will return."""
        with self._lock:
            return self._active.end_seq

    @property
    def first_seq(self) -> int:
        """Lowest sequence number still stored (0 until compaction)."""
        with self._lock:
            return self._segments[0].first_seq

    def _open_active(self) -> None:
        # Unbuffered: every write reaches the OS immediately, so the
        # fsync policy is the only durability variable.
        self._handle = open(self._active.path, "ab", buffering=0)

    def _seal_active(self) -> None:
        if self._handle is not None:
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None

    def _rotate(self) -> None:
        self._seal_active()
        segment = _Segment(
            _segment_path(self.directory, self._active.end_seq),
            self._active.end_seq)
        self._segments.append(segment)
        self._open_active()

    def append(self, payload: bytes) -> int:
        """Append one record; its sequence number once written.

        Durability depends on the fsync policy; framing (length + CRC)
        is always written in one OS-level ``write``.  On an ``OSError``
        (disk full, I/O error) the partial append is truncated away and
        a :class:`WalWriteError` raised — the log stays intact.  An
        injected torn write raises
        :class:`~repro.durability.diskfaults.SimulatedCrash` with the
        torn bytes left in place, exactly like power loss.
        """
        if not payload:
            raise ValueError("WAL records must carry a payload")
        record = RECORD_HEADER.pack(RECORD_MAGIC, len(payload),
                                    zlib.crc32(payload)) + payload
        with self._lock:
            if self._closed:
                raise RuntimeError(f"WAL at {self.directory} is closed")
            if self._active.size + len(record) > self.segment_bytes \
                    and self._active.records > 0:
                self._rotate()
            offset = self._active.size
            try:
                if self._injector is not None:
                    self._injector.on_write(self._handle.write, record)
                else:
                    self._handle.write(record)
            except SimulatedCrash:
                raise  # torn bytes stay, like a real crash
            except OSError as error:
                # Never let a failed append corrupt the log: drop the
                # partial record so the tail ends at the last good one.
                try:
                    self._handle.truncate(offset)
                except OSError:
                    pass
                raise WalWriteError(self._active.path, error) from error
            seq = self._active.end_seq
            self._active.records += 1
            self._active.size += len(record)
            self._stats["appends"] += 1
            self._maybe_sync()
            return seq

    def _maybe_sync(self) -> None:
        if self.fsync_policy == "never":
            return
        now = time.monotonic()
        if self.fsync_policy == "interval" \
                and now - self._last_sync < self.fsync_interval_s:
            return
        os.fsync(self._handle.fileno())
        self._last_sync = now
        self._stats["syncs"] += 1

    def sync(self) -> None:
        """Force an fsync of the active segment (any policy)."""
        with self._lock:
            if self._handle is not None:
                os.fsync(self._handle.fileno())
                self._last_sync = time.monotonic()
                self._stats["syncs"] += 1

    # ------------------------------------------------------------------ #
    # Replay & compaction
    # ------------------------------------------------------------------ #
    def replay(self) -> Iterator[tuple[int, bytes]]:
        """Yield every stored ``(seq, payload)`` in append order.

        Reads from disk (fresh handles), so it reflects exactly what a
        recovery after a crash would see.  Safe to call on a live log;
        records appended after the iterator passes their segment are
        not included.
        """
        with self._lock:
            segments = [(segment.path, segment.first_seq,
                         segment.records) for segment in self._segments]
        for path, first_seq, records in segments:
            data = path.read_bytes()
            offset = 0
            for index in range(records):
                magic, length, crc = RECORD_HEADER.unpack_from(data, offset)
                start = offset + RECORD_HEADER.size
                yield first_seq + index, data[start:start + length]
                offset = start + length

    def has_compactable(self, keep_from_seq: int) -> bool:
        """Whether :meth:`compact` with this bound would delete anything."""
        with self._lock:
            return len(self._segments) > 1 \
                and self._segments[0].end_seq <= keep_from_seq

    def compact(self, keep_from_seq: int) -> dict:
        """Delete sealed segments wholly below ``keep_from_seq``.

        A segment is removed only when *every* record in it has
        ``seq < keep_from_seq`` — the caller's promise that no replay
        will ever ask for those records again (for the router: every
        replica's watermark passed them).  The active segment is never
        removed.  Returns ``{"segments_deleted": ..,
        "bytes_reclaimed": ..}`` for this call.
        """
        deleted = 0
        reclaimed = 0
        with self._lock:
            while len(self._segments) > 1 \
                    and self._segments[0].end_seq <= keep_from_seq:
                segment = self._segments.pop(0)
                deleted += 1
                reclaimed += segment.size
                try:
                    segment.path.unlink()
                except OSError:
                    pass
            if deleted:
                self._stats["compactions"] += 1
                self._stats["segments_deleted"] += deleted
                self._stats["bytes_reclaimed"] += reclaimed
        return {"segments_deleted": deleted, "bytes_reclaimed": reclaimed}

    # ------------------------------------------------------------------ #
    # Observability & lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Counters and layout of the log (JSON-ready)."""
        with self._lock:
            payload = dict(self._stats)
            payload.update({
                "directory": str(self.directory),
                "segments": len(self._segments),
                "first_seq": self._segments[0].first_seq,
                "next_seq": self._active.end_seq,
                "records": sum(s.records for s in self._segments),
                "bytes": sum(s.size for s in self._segments),
                "fsync_policy": self.fsync_policy,
                "segment_bytes": self.segment_bytes,
            })
        return payload

    def close(self) -> None:
        """Seal the active segment (fsync) and release the handle."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._seal_active()
            except OSError:
                pass

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
