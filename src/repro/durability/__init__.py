"""Durable state for the serving stack: WAL, atomic files, disk faults.

The PR 7/8 robustness arc covered process death and network failure;
everything the router knew still lived in memory.  This package makes
state survive the process:

* :mod:`repro.durability.wal` — an append-only, CRC32-framed,
  segmented :class:`~repro.durability.wal.WriteAheadLog` with
  pluggable fsync policy and a recovery scan that truncates a torn or
  corrupt tail instead of crashing.  The
  :class:`~repro.cluster.router.ClusterRouter` journals every
  replicated observe (and per-node watermarks) here when built with
  ``wal_dir=...``, so a SIGKILLed router restarts with bit-identical
  replay state.
* :mod:`repro.durability.atomic` — atomic file publication
  (same-directory temp + fsync + ``os.replace`` + parent-dir fsync)
  and a checksummed envelope; checkpoints publish through both, so a
  crash mid-save never leaves a torn ``.npz`` at the target path and
  silent corruption is detected at load time.
* :mod:`repro.durability.diskfaults` — seeded, deterministic disk
  fault injection (torn writes, bit flips, ``EIO``/``ENOSPC``,
  crash-before-rename) driving the ``chaos_disk`` test tier, built on
  the same :func:`~repro.parallel.faults.fault_rng` stream family as
  the shard and network fault plans.
* :mod:`repro.durability.bench` — the ``repro-ham bench-durability``
  backend measuring append/fsync throughput, recovery time versus log
  length, and compaction reclaim.

See ``docs/robustness.md`` for the disk failure model and the
recovery/truncation contract.
"""

from repro.durability.atomic import (
    ENVELOPE_MAGIC,
    EnvelopeCorruptError,
    atomic_write_bytes,
    atomic_writer,
    fsync_dir,
    is_checksummed,
    read_checksummed,
    unwrap_checksummed,
    wrap_checksummed,
    write_checksummed,
)
from repro.durability.diskfaults import (
    DiskFault,
    DiskFaultInjector,
    DiskFaultPlan,
    SimulatedCrash,
    flip_bit,
)
from repro.durability.wal import (
    FSYNC_POLICIES,
    RECORD_HEADER,
    RECORD_MAGIC,
    WalCompactedError,
    WalWriteError,
    WriteAheadLog,
    pack_observe,
    unpack_observe,
)

__all__ = [
    "ENVELOPE_MAGIC",
    "EnvelopeCorruptError",
    "FSYNC_POLICIES",
    "RECORD_HEADER",
    "RECORD_MAGIC",
    "DiskFault",
    "DiskFaultInjector",
    "DiskFaultPlan",
    "SimulatedCrash",
    "WalCompactedError",
    "WalWriteError",
    "WriteAheadLog",
    "atomic_write_bytes",
    "atomic_writer",
    "flip_bit",
    "fsync_dir",
    "is_checksummed",
    "pack_observe",
    "read_checksummed",
    "unpack_observe",
    "unwrap_checksummed",
    "wrap_checksummed",
    "write_checksummed",
]
