"""Deterministic disk fault injection for the durability layer.

The PR 7/8 chaos tiers made process death and network failure seedable,
replayable configuration (:class:`~repro.parallel.faults.FaultPlan`,
:class:`~repro.cluster.faults.NetFaultPlan`).  This module extends the
same discipline to the last failure domain — the disk:

* **Torn write** — a write is cut at a chosen byte offset and the
  process "crashes" (:class:`SimulatedCrash`), the exact shape of power
  loss mid-``write(2)``.  Recovery code must keep every record before
  the tear and truncate the rest.
* **I/O errors** — the N-th write raises ``EIO`` (media error) or
  ``ENOSPC`` (disk full) *before* any byte lands, so the caller's
  typed-error path is exercised without corrupting what is already on
  disk.
* **Crash before rename** — an atomic publication
  (:mod:`repro.durability.atomic`) crashes after the temp file is
  written but before ``os.replace``, the window a non-atomic writer
  would expose a torn file in.
* **Bit flip** — :func:`flip_bit` corrupts one stored bit in an
  existing file, either at explicit coordinates or at a position drawn
  from the shared :func:`~repro.parallel.faults.fault_rng` stream
  family, so checksum-verification tests replay exactly.

Like its siblings, a :class:`DiskFaultPlan` is a frozen, picklable
dataclass and every random decision derives from ``fault_rng`` — a
chaos-disk scenario is reproducible from the plan seed plus the
injector's coordinates alone.
"""

from __future__ import annotations

import errno
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.parallel.faults import fault_rng

__all__ = ["DiskFault", "DiskFaultPlan", "DiskFaultInjector",
           "SimulatedCrash", "flip_bit"]

#: Stream tag separating disk-fault draws from the shard (no tag) and
#: network (``_NET_STREAM``) fault streams of the shared RNG family.
_DISK_STREAM = 0x4449


class SimulatedCrash(RuntimeError):
    """The injected "process died here" signal of the disk fault plans.

    Raised after a torn write or instead of an ``os.replace`` to model
    a crash at the worst possible instant.  Tests catch it where a real
    deployment would lose the process; nothing below the raise point
    may have cleaned up, because a real crash would not have either.
    """


@dataclass(frozen=True)
class DiskFault:
    """One injected disk fault, keyed by operation count (picklable).

    Parameters
    ----------
    at_op:
        1-based index of the write (or rename, for
        ``crash_before_rename``) this fault fires on, counted per
        injector.
    torn_at_byte:
        Write only this many bytes of the faulted write, then raise
        :class:`SimulatedCrash` — a torn tail record.  ``None``
        disables.
    errno_code:
        Raise ``OSError(errno_code)`` before any byte of the faulted
        write lands (``errno.EIO``, ``errno.ENOSPC``).  ``None``
        disables.
    crash_before_rename:
        Raise :class:`SimulatedCrash` on the ``at_op``-th rename, after
        the temp file was written and fsynced but before
        ``os.replace`` publishes it.
    """

    at_op: int = 1
    torn_at_byte: int | None = None
    errno_code: int | None = None
    crash_before_rename: bool = False


@dataclass(frozen=True)
class DiskFaultPlan:
    """A seedable, picklable set of disk faults for one writer.

    Pass a plan (via :class:`DiskFaultInjector`) to
    :class:`~repro.durability.wal.WriteAheadLog` or the
    :mod:`~repro.durability.atomic` writers; writers without an
    injector run normally.  At most one fault per operation index.
    """

    faults: tuple[DiskFault, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "faults", tuple(self.faults))
        ops = [fault.at_op for fault in self.faults]
        if len(ops) != len(set(ops)):
            raise ValueError("at most one DiskFault per operation index")

    def for_op(self, op: int) -> DiskFault | None:
        """The fault configured for the ``op``-th operation, or ``None``."""
        for fault in self.faults:
            if fault.at_op == op:
                return fault
        return None

    # ------------------------------------------------------------------ #
    # Convenience constructors for the common single-fault plans
    # ------------------------------------------------------------------ #
    @classmethod
    def torn_write(cls, at_op: int = 1, at_byte: int = 0,
                   seed: int = 0) -> "DiskFaultPlan":
        """Plan that tears the ``at_op``-th write at ``at_byte`` bytes."""
        return cls(faults=(DiskFault(at_op=at_op, torn_at_byte=at_byte),),
                   seed=seed)

    @classmethod
    def io_error(cls, at_op: int = 1, code: int = errno.EIO,
                 seed: int = 0) -> "DiskFaultPlan":
        """Plan that fails the ``at_op``-th write with ``OSError(code)``."""
        return cls(faults=(DiskFault(at_op=at_op, errno_code=code),),
                   seed=seed)

    @classmethod
    def no_space(cls, at_op: int = 1, seed: int = 0) -> "DiskFaultPlan":
        """Plan that fails the ``at_op``-th write with ``ENOSPC``."""
        return cls.io_error(at_op=at_op, code=errno.ENOSPC, seed=seed)

    @classmethod
    def crash_before_rename(cls, at_op: int = 1,
                            seed: int = 0) -> "DiskFaultPlan":
        """Plan that crashes the ``at_op``-th atomic publication
        after the temp write but before ``os.replace``."""
        return cls(faults=(DiskFault(at_op=at_op, crash_before_rename=True),),
                   seed=seed)


class DiskFaultInjector:
    """Writer-side executor of a :class:`DiskFaultPlan`.

    Built once per writer (one WAL, one atomic publication stream);
    :meth:`on_write` wraps every payload write and :meth:`on_rename`
    every ``os.replace``.  Both count operations deterministically, so
    for a fixed plan the fault fires at the exact same byte of the
    exact same operation on every run.
    """

    def __init__(self, plan: DiskFaultPlan, *key: int):
        self._plan = plan
        self._writes = 0
        self._renames = 0
        # Reserved for jittered faults; deriving it here pins the
        # stream coordinates of every injector to (seed, disk, *key).
        self._rng = fault_rng(plan.seed, _DISK_STREAM, *key)

    def on_write(self, write: Callable[[bytes], object],
                 data: bytes) -> None:
        """Perform ``write(data)``, applying the configured write fault.

        ``write`` must be a callable performing the actual I/O (for
        example ``fileobj.write``); the injector either forwards the
        full payload, raises ``OSError`` before any byte lands (EIO /
        ENOSPC), or writes a torn prefix and raises
        :class:`SimulatedCrash`.
        """
        self._writes += 1
        fault = self._plan.for_op(self._writes)
        if fault is None:
            write(data)
            return
        if fault.errno_code is not None:
            raise OSError(fault.errno_code, os.strerror(fault.errno_code))
        if fault.torn_at_byte is not None:
            write(data[:fault.torn_at_byte])
            raise SimulatedCrash(
                f"torn write: {fault.torn_at_byte}/{len(data)} bytes of "
                f"write #{self._writes} reached the disk")
        write(data)

    def on_rename(self) -> None:
        """Gate one ``os.replace``; raises on a crash-before-rename fault."""
        self._renames += 1
        fault = self._plan.for_op(self._renames)
        if fault is not None and fault.crash_before_rename:
            raise SimulatedCrash(
                f"crash before rename #{self._renames}: temp file written, "
                "target never published")


def flip_bit(path: str | Path, *, byte: int | None = None, bit: int | None = None,
             seed: int = 0, key: tuple[int, ...] = ()) -> tuple[int, int]:
    """Flip one stored bit of ``path`` in place; returns ``(byte, bit)``.

    Explicit ``byte``/``bit`` coordinates corrupt a chosen position;
    when either is ``None`` the position is drawn from the shared
    ``fault_rng`` stream at ``(seed, disk, *key)``, so a "random"
    corruption replays identically for a fixed seed.  The bit-flip
    scenario of the ``chaos_disk`` tier: checksummed readers must
    detect the corruption instead of serving garbage.
    """
    path = Path(path)
    size = path.stat().st_size
    if size == 0:
        raise ValueError(f"cannot flip a bit of empty file {path}")
    rng = fault_rng(seed, _DISK_STREAM, *key)
    if byte is None:
        byte = int(rng.integers(0, size))
    if bit is None:
        bit = int(rng.integers(0, 8))
    if not 0 <= byte < size:
        raise ValueError(f"byte offset {byte} outside [0, {size})")
    with open(path, "r+b") as handle:
        handle.seek(byte)
        original = handle.read(1)[0]
        handle.seek(byte)
        handle.write(bytes([original ^ (1 << bit)]))
    return int(byte), int(bit)
