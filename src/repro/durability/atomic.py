"""Atomic, checksummed file publication.

``np.savez(path)`` — and any other "open the final path and write into
it" scheme — has a crash window: a process dying mid-write leaves a
torn file *at the target path*, and the next reader (``repro-ham serve
--checkpoint``) trusts it.  This module closes that window with the
classic POSIX recipe and adds end-to-end corruption detection:

* :func:`atomic_write_bytes` / :func:`atomic_writer` — write to a temp
  file **in the same directory** (same filesystem, so the rename is
  atomic), flush + ``fsync`` the data, ``os.replace`` onto the target,
  then ``fsync`` the parent directory so the rename itself survives a
  power cut.  A crash at any point leaves either the old file or the
  new file at the target — never a mix, never a prefix.
* the **checksummed envelope** — :func:`wrap_checksummed` frames a
  payload as ``magic | length | CRC32 | payload`` and
  :func:`unwrap_checksummed` verifies all three before returning a
  byte of it, raising :class:`EnvelopeCorruptError` on torn tails and
  bit flips alike.  Checkpoints publish through both layers (see
  :mod:`repro.training.checkpoint`): the rename guarantees you never
  see a partial file, the checksum guarantees you notice silent
  corruption of a complete-looking one.

Both writers accept a
:class:`~repro.durability.diskfaults.DiskFaultInjector`, which is how
the ``chaos_disk`` tier drives the crash-before-rename and I/O-error
scenarios deterministically.
"""

from __future__ import annotations

import os
import struct
import zlib
from contextlib import contextmanager
from pathlib import Path

from repro.durability.diskfaults import DiskFaultInjector, SimulatedCrash

__all__ = [
    "ENVELOPE_MAGIC",
    "EnvelopeCorruptError",
    "atomic_write_bytes",
    "atomic_writer",
    "fsync_dir",
    "is_checksummed",
    "read_checksummed",
    "unwrap_checksummed",
    "wrap_checksummed",
    "write_checksummed",
]

#: Leading magic of the checksummed envelope ("Repro Durable Envelope 1").
ENVELOPE_MAGIC = b"RDE1"

#: Envelope header: magic, u64 payload length, u32 CRC32 of the payload
#: (little-endian, like the cluster wire protocol).
_ENVELOPE_HEADER = struct.Struct("<4sQI")


class EnvelopeCorruptError(RuntimeError):
    """A checksummed envelope failed verification (torn, flipped, alien).

    Carries a human-readable reason naming what failed — magic, length
    or CRC — so callers can surface a one-line diagnosis instead of a
    raw ``struct``/``zlib`` traceback.
    """


def fsync_dir(directory: str | Path) -> None:
    """``fsync`` a directory so a completed rename survives power loss.

    ``os.replace`` updates the directory entry; until the directory's
    own metadata is flushed, a crash can roll the rename back.  No-op
    on platforms whose directories cannot be opened for reading.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


@contextmanager
def atomic_writer(path: str | Path, *, fsync: bool = True,
                  fault_injector: DiskFaultInjector | None = None):
    """Context manager yielding a same-directory temp path to write to.

    On clean exit the temp file is fsynced (``fsync=True``), atomically
    renamed onto ``path`` via ``os.replace`` and the parent directory
    is fsynced.  On an exception the temp file is removed and ``path``
    is untouched — except for an injected :class:`SimulatedCrash`,
    which (like a real crash) cleans nothing up; the guarantee under
    test is that the *target* path never exposes a partial file.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        yield temp
        if fsync and temp.exists():
            with open(temp, "rb") as handle:
                os.fsync(handle.fileno())
        if fault_injector is not None:
            fault_injector.on_rename()
        os.replace(temp, path)
        if fsync:
            fsync_dir(path.parent)
    except SimulatedCrash:
        raise  # a crash cleans nothing up — that is the point
    except BaseException:
        try:
            temp.unlink()
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str | Path, data: bytes, *, fsync: bool = True,
                       fault_injector: DiskFaultInjector | None = None) -> Path:
    """Atomically publish ``data`` at ``path`` (temp + fsync + rename).

    The write itself goes through the fault injector when one is given
    (EIO/ENOSPC and torn-write faults fire here; crash-before-rename
    fires between the temp fsync and ``os.replace``).  Returns the
    target path.
    """
    path = Path(path)
    with atomic_writer(path, fsync=fsync,
                       fault_injector=fault_injector) as temp:
        with open(temp, "wb") as handle:
            if fault_injector is not None:
                fault_injector.on_write(handle.write, data)
            else:
                handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
    return path


def wrap_checksummed(payload: bytes) -> bytes:
    """Frame ``payload`` as ``magic | length | CRC32 | payload`` bytes."""
    return _ENVELOPE_HEADER.pack(ENVELOPE_MAGIC, len(payload),
                                 zlib.crc32(payload)) + payload


def unwrap_checksummed(blob: bytes, source: str = "envelope") -> bytes:
    """Verify and strip the envelope; the verified payload bytes.

    Raises :class:`EnvelopeCorruptError` naming ``source`` when the
    magic is wrong (not an envelope), the blob is shorter than the
    recorded length (torn write) or the CRC32 disagrees (bit rot).
    """
    if len(blob) < _ENVELOPE_HEADER.size:
        raise EnvelopeCorruptError(
            f"{source}: {len(blob)} bytes is shorter than the "
            f"{_ENVELOPE_HEADER.size}-byte envelope header")
    magic, length, crc = _ENVELOPE_HEADER.unpack_from(blob)
    if magic != ENVELOPE_MAGIC:
        raise EnvelopeCorruptError(
            f"{source}: bad envelope magic {magic!r} "
            f"(expected {ENVELOPE_MAGIC!r})")
    payload = blob[_ENVELOPE_HEADER.size:]
    if len(payload) != length:
        raise EnvelopeCorruptError(
            f"{source}: torn envelope — header promises {length} payload "
            f"bytes, file holds {len(payload)}")
    actual = zlib.crc32(payload)
    if actual != crc:
        raise EnvelopeCorruptError(
            f"{source}: CRC32 mismatch — stored {crc:#010x}, computed "
            f"{actual:#010x} (bit corruption)")
    return payload


def is_checksummed(blob: bytes) -> bool:
    """Whether ``blob`` starts with the envelope magic (format sniff)."""
    return blob[:len(ENVELOPE_MAGIC)] == ENVELOPE_MAGIC


def write_checksummed(path: str | Path, payload: bytes, *,
                      fsync: bool = True,
                      fault_injector: DiskFaultInjector | None = None) -> Path:
    """Atomically publish ``payload`` under the checksummed envelope."""
    return atomic_write_bytes(path, wrap_checksummed(payload), fsync=fsync,
                              fault_injector=fault_injector)


def read_checksummed(path: str | Path) -> bytes:
    """Read and verify an enveloped file; the verified payload bytes."""
    path = Path(path)
    return unwrap_checksummed(path.read_bytes(), source=str(path))
