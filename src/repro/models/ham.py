"""HAM — Hybrid Associations Model without item synergies (paper Section 4).

The model scores candidate item ``j`` for user ``i`` at time ``t`` as

``r_ij = u_i · w_j  +  h_i · w_j  +  o_i · w_j``            (Eq. 7)

where ``u_i`` is the user's general-preference embedding, ``h_i`` is the
pooled embedding of the previous ``n_h`` items (high-order association)
and ``o_i`` the pooled embedding of the previous ``n_l`` items (low-order
association).  Pooling is mean (``HAMm``) or max (``HAMx``); the source
items use the "source" item embedding table ``V`` and candidates the
separate "target" table ``W`` (heterogeneous item embeddings, Section 4).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Tensor
from repro.models.base import SequentialRecommender
from repro.models.pooling import get_pooling

__all__ = ["HAM"]


class HAM(SequentialRecommender):
    """HAMx / HAMm (and their ablations without the user or low-order term).

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions.
    embedding_dim:
        Embedding dimensionality ``d``.
    n_h:
        Number of items in the high-order association (also the number of
        recent items fed to the model).
    n_l:
        Number of items in the low-order association; must satisfy
        ``0 <= n_l <= n_h``.  ``n_l = 0`` ablates the low-order term
        (the paper's ``HAM-o`` variant).
    pooling:
        ``"mean"`` (HAMm) or ``"max"`` (HAMx).
    use_user_embedding:
        Set to False to ablate the general-preference term (``HAM-u``).
    rng:
        Random generator for parameter initialization.
    init_std:
        Standard deviation of the embedding initializer.
    dtype:
        Optional compute dtype (``"float32"``/``"float64"``); the
        parameters are cast via :meth:`Module.astype` after construction.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 n_h: int = 5, n_l: int = 2, pooling: str = "mean",
                 use_user_embedding: bool = True,
                 rng: np.random.Generator | None = None, init_std: float = 0.01,
                 dtype=None):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, n_h)
        if not 0 <= n_l <= n_h:
            raise ValueError("n_l must satisfy 0 <= n_l <= n_h")
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.n_h = n_h
        self.n_l = n_l
        self.input_length = n_h
        self.pad_id = num_items
        self.pooling_name = pooling.lower()
        self.pooling = get_pooling(pooling)
        self.use_user_embedding = use_user_embedding

        # U: users' general preferences; V: source item embeddings;
        # W: candidate ("target") item embeddings.  V and W get one extra
        # padding row pinned to zero.
        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng, std=init_std)
        self.source_item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                std=init_std, padding_idx=self.pad_id)
        self.target_item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                std=init_std, padding_idx=self.pad_id)
        if dtype is not None:
            self.astype(dtype)

    # ------------------------------------------------------------------ #
    # Representation factors
    # ------------------------------------------------------------------ #
    def association_embeddings(self, inputs: np.ndarray) -> tuple[Tensor, Tensor | None]:
        """High-order and low-order association vectors ``(h, o)`` (Eq. 1).

        ``o`` is None when ``n_l = 0`` (low-order term ablated).
        """
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        embedded = self.source_item_embeddings(inputs)              # (B, n_h, d)
        high_order = self.pooling(embedded, mask)                   # (B, d)
        if self.n_l == 0:
            return high_order, None
        low_inputs = inputs[:, -self.n_l:]
        low_mask = mask[:, -self.n_l:]
        low_embedded = self.source_item_embeddings(low_inputs)
        low_order = self.pooling(low_embedded, low_mask)
        return high_order, low_order

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        """``u + h + o`` — the three linear factors of Eq. 7 collapsed."""
        high_order, low_order = self.association_embeddings(inputs)
        representation = high_order
        if low_order is not None:
            representation = representation + low_order
        if self.use_user_embedding:
            representation = representation + self.user_embeddings(np.asarray(users, dtype=np.int64))
        return representation

    def candidate_item_embeddings(self) -> Tensor:
        return self.target_item_embeddings.weight

    # ------------------------------------------------------------------ #
    # Book-keeping
    # ------------------------------------------------------------------ #
    def after_step(self) -> None:
        """Re-pin padding rows after an optimizer step (called by the trainer)."""
        self.source_item_embeddings.apply_padding_mask()
        self.target_item_embeddings.apply_padding_mask()

    @property
    def variant_name(self) -> str:
        """Paper-style name, e.g. ``HAMm`` or ``HAMx``."""
        suffix = "m" if self.pooling_name == "mean" else "x"
        name = f"HAM{suffix}"
        if self.n_l == 0:
            name += "-o"
        if not self.use_user_embedding:
            name += "-u"
        return name
