"""Model registry — create any model of the study from a name and kwargs.

The registry maps the paper's method names (column headers of Tables 3-8)
to constructors, so the experiment harness, grid search and CLI can be
configured with plain strings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.models.base import SequentialRecommender
from repro.models.bprmf import BPRMF
from repro.models.caser import Caser
from repro.models.fossil import Fossil
from repro.models.fpmc import FPMC
from repro.models.gru4rec import GRU4Rec
from repro.models.gru4rec_plus import GRU4RecPlus
from repro.models.ham import HAM
from repro.models.ham_synergy import HAMSynergy
from repro.models.hgn import HGN
from repro.models.itemknn import ItemKNN
from repro.models.markov import MarkovChain
from repro.models.narm import NARM
from repro.models.nextitrec import NextItRec
from repro.models.popularity import Popularity
from repro.models.sasrec import SASRec
from repro.models.stamp import STAMP

__all__ = [
    "MODEL_REGISTRY",
    "create_model",
    "PAPER_METHODS",
    "HAM_VARIANTS",
    "EXTENSION_METHODS",
]


def _ham(pooling: str, **fixed):
    def factory(num_users: int, num_items: int, rng=None, **kwargs) -> HAM:
        kwargs = {**fixed, **kwargs}
        return HAM(num_users, num_items, pooling=pooling, rng=rng, **kwargs)
    return factory


def _ham_synergy(pooling: str, **fixed):
    def factory(num_users: int, num_items: int, rng=None, **kwargs) -> HAMSynergy:
        kwargs = {**fixed, **kwargs}
        return HAMSynergy(num_users, num_items, pooling=pooling, rng=rng, **kwargs)
    return factory


#: Name -> factory(num_users, num_items, rng=..., **hyperparameters)
MODEL_REGISTRY: dict[str, Callable[..., SequentialRecommender]] = {
    # The HAM family (paper Section 4)
    "HAMx": _ham("max"),
    "HAMm": _ham("mean"),
    "HAMs_x": _ham_synergy("max"),
    "HAMs_m": _ham_synergy("mean"),
    # Ablated variants (paper Section 6.6)
    "HAMs_m-o": _ham_synergy("mean", n_l=0),
    "HAMs_m-u": _ham_synergy("mean", use_user_embedding=False),
    # State-of-the-art baselines (paper Section 5.1)
    "Caser": lambda num_users, num_items, rng=None, **kw: Caser(num_users, num_items, rng=rng, **kw),
    "SASRec": lambda num_users, num_items, rng=None, **kw: SASRec(num_users, num_items, rng=rng, **kw),
    "HGN": lambda num_users, num_items, rng=None, **kw: HGN(num_users, num_items, rng=rng, **kw),
    # Reference baselines (literature review)
    "POP": lambda num_users, num_items, rng=None, **kw: Popularity(num_users, num_items, **kw),
    "BPR-MF": lambda num_users, num_items, rng=None, **kw: BPRMF(num_users, num_items, rng=rng, **kw),
    "FPMC": lambda num_users, num_items, rng=None, **kw: FPMC(num_users, num_items, rng=rng, **kw),
    "GRU4Rec": lambda num_users, num_items, rng=None, **kw: GRU4Rec(num_users, num_items, rng=rng, **kw),
    "GRU4Rec++": lambda num_users, num_items, rng=None, **kw: GRU4RecPlus(num_users, num_items, rng=rng, **kw),
    # Extension baselines covered by the paper's literature review
    # (Section 2) but not rerun in its tables.
    "NARM": lambda num_users, num_items, rng=None, **kw: NARM(num_users, num_items, rng=rng, **kw),
    "STAMP": lambda num_users, num_items, rng=None, **kw: STAMP(num_users, num_items, rng=rng, **kw),
    "NextItRec": lambda num_users, num_items, rng=None, **kw: NextItRec(num_users, num_items, rng=rng, **kw),
    "Fossil": lambda num_users, num_items, rng=None, **kw: Fossil(num_users, num_items, rng=rng, **kw),
    # Count-based (non-parametric) reference models.
    "ItemKNN": lambda num_users, num_items, rng=None, **kw: ItemKNN(num_users, num_items, **kw),
    "MarkovChain": lambda num_users, num_items, rng=None, **kw: MarkovChain(num_users, num_items, **kw),
}

#: Methods compared in the paper's overall-performance tables, in column order.
PAPER_METHODS = ("Caser", "SASRec", "HGN", "HAMx", "HAMm", "HAMs_x", "HAMs_m")

#: The HAM family members.
HAM_VARIANTS = ("HAMx", "HAMm", "HAMs_x", "HAMs_m", "HAMs_m-o", "HAMs_m-u")

#: Extension baselines from the literature review (not in the paper's tables).
EXTENSION_METHODS = ("GRU4Rec", "GRU4Rec++", "NARM", "STAMP", "NextItRec", "Fossil",
                     "ItemKNN", "MarkovChain", "POP", "BPR-MF", "FPMC")


def create_model(name: str, num_users: int, num_items: int,
                 rng: np.random.Generator | None = None,
                 **hyperparameters) -> SequentialRecommender:
    """Instantiate a model by its paper name.

    Parameters
    ----------
    name:
        A key of :data:`MODEL_REGISTRY` (case-sensitive, e.g. ``"HAMs_m"``).
    num_users, num_items:
        Dataset dimensions.
    rng:
        Random generator controlling parameter initialization.
    hyperparameters:
        Model-specific keyword arguments (``embedding_dim``, ``n_h`` ...).
        The special key ``dtype`` works for every model: the constructed
        model's parameters are cast via
        :meth:`~repro.autograd.module.Module.astype` (count-based models
        without parameters ignore it).
    """
    if name not in MODEL_REGISTRY:
        raise KeyError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_REGISTRY))}"
        )
    dtype = hyperparameters.pop("dtype", None)
    model = MODEL_REGISTRY[name](num_users, num_items, rng=rng, **hyperparameters)
    if dtype is not None:
        model.astype(dtype)
    return model
