"""Count-based Markov-chain recommender with lag mixing.

The paper's literature review starts from Markov-chain recommenders
(FPMC [6] and the higher-order chains of He et al. [7]).  FPMC is
implemented as a factorized model in :mod:`repro.models.fpmc`; this module
provides the *count-based* counterpart: empirical transition probabilities
estimated directly from the training sequences.

A full high-order chain over item *tuples* is intractable (``n^k`` states),
so, as in Fossil [7], the high-order dependence is factored per lag: the
score of candidate ``j`` given the recent items ``(..., i_{t-2}, i_{t-1})``
is a weighted mixture of per-lag transition counts

``score(j) = sum_{l=1..order} decay^(l-1) * P_l(j | i_{t-l})``

where ``P_l`` is the (add-one smoothed, row-normalized) empirical
distribution of the item observed ``l`` steps after ``i_{t-l}``.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.models.nonparametric import NonParametricRecommender

__all__ = ["MarkovChain"]


class MarkovChain(NonParametricRecommender):
    """Per-lag mixture of empirical transition probabilities.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions.
    order:
        Number of lags mixed into the score (1 gives a plain first-order
        Markov chain); also the number of recent items the model consumes.
    lag_decay:
        Weight ratio between consecutive lags; lag ``l`` contributes with
        weight ``lag_decay**(l-1)``.
    smoothing:
        Additive (Laplace) smoothing constant applied when normalizing
        transition counts into probabilities.
    """

    def __init__(self, num_users: int, num_items: int, order: int = 3,
                 lag_decay: float = 0.5, smoothing: float = 0.1):
        super().__init__(num_users, num_items, input_length=order)
        if order < 1:
            raise ValueError("order must be positive")
        if not 0.0 < lag_decay <= 1.0:
            raise ValueError("lag_decay must be in (0, 1]")
        if smoothing < 0.0:
            raise ValueError("smoothing must be non-negative")
        self.order = order
        self.lag_decay = lag_decay
        self.smoothing = smoothing
        self._transitions: list[sparse.csr_matrix] = []
        self._row_totals: list[np.ndarray] = []
        self._popularity = np.zeros(num_items, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit_counts(self, sequences: list[list[int]]) -> "MarkovChain":
        """Count per-lag transitions over the training ``sequences``."""
        self._validate_sequences(sequences)
        counts = [
            sparse.lil_matrix((self.num_items, self.num_items), dtype=np.float64)
            for _ in range(self.order)
        ]
        popularity = np.zeros(self.num_items, dtype=np.float64)

        for seq in sequences:
            items = np.asarray(seq, dtype=np.int64)
            np.add.at(popularity, items, 1.0)
            for lag in range(1, self.order + 1):
                if len(items) <= lag:
                    continue
                sources = items[:-lag]
                targets = items[lag:]
                for source, target in zip(sources, targets):
                    counts[lag - 1][source, target] += 1.0

        self._transitions = [matrix.tocsr() for matrix in counts]
        self._row_totals = [
            np.asarray(matrix.sum(axis=1)).ravel() for matrix in self._transitions
        ]
        total = popularity.sum()
        self._popularity = popularity / total if total > 0 else popularity
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def transition_probabilities(self, item: int, lag: int = 1) -> np.ndarray:
        """Smoothed ``P_lag(next | item)`` as a dense ``(num_items,)`` array."""
        self._require_fitted()
        if not 1 <= lag <= self.order:
            raise ValueError(f"lag must be in [1, {self.order}]")
        if not 0 <= item < self.num_items:
            raise ValueError(f"item id {item} outside [0, {self.num_items})")
        row = self._transitions[lag - 1].getrow(item).toarray().ravel()
        total = self._row_totals[lag - 1][item]
        return (row + self.smoothing) / (total + self.smoothing * self.num_items)

    def score_all(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Mixture of per-lag transition probabilities for every candidate."""
        self._require_fitted()
        inputs = np.asarray(inputs, dtype=np.int64)
        scores = np.zeros((inputs.shape[0], self.num_items), dtype=np.float64)
        length = inputs.shape[1]
        for row in range(inputs.shape[0]):
            any_real = False
            for lag in range(1, min(self.order, length) + 1):
                item = inputs[row, length - lag]
                if item == self.pad_id:
                    continue
                any_real = True
                weight = self.lag_decay ** (lag - 1)
                scores[row] += weight * self.transition_probabilities(int(item), lag)
            if not any_real:
                # Cold start: fall back to the popularity distribution.
                scores[row] = self._popularity
        return scores
