"""NextItRec — dilated convolutional generative recommender (Yuan et al., WSDM'19).

The CNN-based baseline of the paper's literature review (Section 2,
reference [14]): a stack of residual blocks, each applying two dilated
*causal* convolutions (kernel size 2) with exponentially growing dilation,
so the receptive field covers long histories without recurrence.  HGN was
shown to outperform NextItRec, which is why the HAM paper does not rerun
it; this implementation makes that transitive comparison checkable.

The causal convolution with kernel size 2 and dilation ``r`` is expressed
without a dedicated conv op: ``out[t] = x[t - r] W_prev + x[t] W_curr + b``
where ``x[t - r]`` comes from shifting the sequence right by ``r`` and
left-padding with zeros.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, LayerNorm, Module, Tensor
from repro.models.base import SequentialRecommender

__all__ = ["NextItRec"]


class _CausalConv(Module):
    """Kernel-size-2 dilated causal convolution over ``(B, L, in_dim)``."""

    def __init__(self, in_dim: int, out_dim: int, dilation: int,
                 rng: np.random.Generator):
        super().__init__()
        from repro.autograd import init

        if dilation < 1:
            raise ValueError("dilation must be positive")
        self.dilation = dilation
        self.weight_previous = init.xavier_uniform((in_dim, out_dim), rng)
        self.weight_current = init.xavier_uniform((in_dim, out_dim), rng)
        self.bias = init.zeros((out_dim,))

    def forward(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        shift = min(self.dilation, length)
        zeros = Tensor(np.zeros((batch, shift, x.shape[2]), dtype=x.dtype))
        shifted = Tensor.concatenate([zeros, x[:, : length - shift, :]], axis=1)
        return (
            shifted.matmul(self.weight_previous)
            + x.matmul(self.weight_current)
            + self.bias
        )


class _ResidualBlock(Module):
    """NextItRec residual block: two dilated causal convs with a bottleneck."""

    def __init__(self, dim: int, dilation: int, rng: np.random.Generator):
        super().__init__()
        bottleneck = max(dim // 2, 1)
        self.norm_in = LayerNorm(dim)
        self.conv_in = _CausalConv(dim, bottleneck, dilation, rng)
        self.norm_mid = LayerNorm(bottleneck)
        self.conv_out = _CausalConv(bottleneck, dim, 2 * dilation, rng)

    def forward(self, x: Tensor) -> Tensor:
        hidden = self.conv_in(self.norm_in(x).relu())
        hidden = self.conv_out(self.norm_mid(hidden).relu())
        return x + hidden


class NextItRec(SequentialRecommender):
    """Dilated-CNN generative sequential recommender.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions (the user id is unused, matching the original
        session-style model, but kept for interface uniformity).
    embedding_dim:
        Item embedding / channel dimensionality ``d``.
    sequence_length:
        Number of recent items fed to the convolution stack.
    dilations:
        Dilation of each residual block; the default ``(1, 2, 4)`` gives a
        receptive field of 15 positions, ample for the analogue sequences.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 sequence_length: int = 10, dilations: tuple[int, ...] = (1, 2, 4),
                 rng: np.random.Generator | None = None, init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        if not dilations:
            raise ValueError("at least one residual block is required")
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.dilations = tuple(dilations)
        self.pad_id = num_items

        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)
        self.blocks = [
            _ResidualBlock(embedding_dim, dilation, rng) for dilation in self.dilations
        ]
        self.final_norm = LayerNorm(embedding_dim)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        inputs = np.asarray(inputs, dtype=np.int64)
        hidden = self.item_embeddings(inputs)
        padding_mask = (inputs != self.pad_id).astype(hidden.dtype)[:, :, None]
        hidden = hidden * Tensor(padding_mask)      # (B, L, d)
        for block in self.blocks:
            hidden = block(hidden) * Tensor(padding_mask)
        hidden = self.final_norm(hidden)
        return hidden[:, -1, :]                                           # last position

    def candidate_item_embeddings(self) -> Tensor:
        return self.item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin the padding row after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
