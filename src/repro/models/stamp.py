"""STAMP — Short-Term Attention/Memory Priority model (Liu et al., KDD'18).

The attention-only recommender of the paper's literature review
(Section 2, reference [12]): no recurrence or convolution, just an
attention over the recent item embeddings conditioned on the session
summary (their mean) and the most recent item, followed by two small MLPs
whose outputs are combined with an element-wise product — structurally the
closest published neighbour of HAM's pooling-plus-Hadamard design, which
makes it a natural extra comparison point.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Linear, Tensor, functional as F, init
from repro.models.base import SequentialRecommender
from repro.models.pooling import masked_mean_pool

__all__ = ["STAMP"]


class STAMP(SequentialRecommender):
    """Short-term attention/memory priority recommender.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions (the user id is unused, as in the session-based
        original, but kept for interface uniformity).
    embedding_dim:
        Item embedding dimensionality ``d``.
    sequence_length:
        Number of recent items the attention ranges over.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 sequence_length: int = 10, rng: np.random.Generator | None = None,
                 init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.pad_id = num_items

        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)

        # Attention: a_i = w0^T sigmoid(W1 x_i + W2 x_t + W3 m_s + b).
        self.attention_item = init.xavier_uniform((embedding_dim, embedding_dim), rng)
        self.attention_last = init.xavier_uniform((embedding_dim, embedding_dim), rng)
        self.attention_memory = init.xavier_uniform((embedding_dim, embedding_dim), rng)
        self.attention_bias = init.zeros((embedding_dim,))
        self.attention_vector = init.xavier_uniform((embedding_dim, 1), rng)

        # The two MLP "cells" of the original model.
        self.memory_mlp = Linear(embedding_dim, embedding_dim, rng=rng)
        self.last_mlp = Linear(embedding_dim, embedding_dim, rng=rng)

    # ------------------------------------------------------------------ #
    # Attention
    # ------------------------------------------------------------------ #
    def attention_weights(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Raw unnormalized attention weights, ``(B, L)``.

        STAMP does not softmax-normalize its attention (the coefficients
        are a learned projection of sigmoid-bounded energies, so they can
        lie outside [0, 1]); the weights are reported as-is with padded
        positions set to NaN.
        """
        from repro.autograd import no_grad

        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        with no_grad():
            embedded = self.item_embeddings(inputs)
            weights = self._attention(embedded, mask)
        values = weights.data.copy()
        values[~mask] = np.nan
        return values

    def _attention(self, embedded: Tensor, mask: np.ndarray) -> Tensor:
        """Per-position attention coefficients ``a_i``, shape ``(B, L)``."""
        memory = masked_mean_pool(embedded, mask)                         # (B, d)
        last = embedded[:, -1, :]                                         # (B, d)
        energies = F.sigmoid(
            embedded.matmul(self.attention_item)
            + last.matmul(self.attention_last).expand_dims(1)
            + memory.matmul(self.attention_memory).expand_dims(1)
            + self.attention_bias
        )
        scores = energies.matmul(self.attention_vector).squeeze(2)        # (B, L)
        # Padded positions must contribute nothing to the weighted sum.
        return scores * Tensor(np.asarray(mask).astype(scores.dtype))

    # ------------------------------------------------------------------ #
    # SequentialRecommender interface
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        embedded = self.item_embeddings(inputs)                           # (B, L, d)

        weights = self._attention(embedded, mask)                         # (B, L)
        attended_memory = (embedded * weights.expand_dims(2)).sum(axis=1)  # (B, d)
        last = embedded[:, -1, :]                                         # (B, d)

        memory_state = F.tanh(self.memory_mlp(attended_memory))
        last_state = F.tanh(self.last_mlp(last))
        return memory_state * last_state                                  # (B, d)

    def candidate_item_embeddings(self) -> Tensor:
        return self.item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin the padding row after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
