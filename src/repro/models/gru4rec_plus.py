"""GRU4Rec++ — GRU4Rec with ranking-loss improvements (Hidasi & Karatzoglou, CIKM'18).

Reference [2] of the paper: the follow-up to GRU4Rec whose main change is
the training objective, not the architecture — each positive is contrasted
against *many* sampled negatives with the BPR-max loss, which mitigates
the vanishing gradients the single-negative losses suffer from once most
negatives are easy.

Architecturally the model is therefore :class:`~repro.models.gru4rec.GRU4Rec`
with a larger default dropout and the attributes ``recommended_loss`` /
``recommended_num_negatives`` that the shared trainer picks up when the
training configuration does not override them.
"""

from __future__ import annotations

import numpy as np

from repro.models.gru4rec import GRU4Rec

__all__ = ["GRU4RecPlus"]


class GRU4RecPlus(GRU4Rec):
    """GRU4Rec trained with the BPR-max loss over several negatives.

    Parameters
    ----------
    num_users, num_items, embedding_dim, hidden_dim, sequence_length:
        As in :class:`~repro.models.gru4rec.GRU4Rec`.
    num_negatives:
        Sampled negatives per positive recommended to the trainer
        (GRU4Rec++ uses large negative samples; the default is scaled to
        the synthetic analogues).
    """

    #: Loss the shared trainer uses when the config does not name one.
    recommended_loss = "bpr_max"

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 hidden_dim: int | None = None, sequence_length: int = 10,
                 num_negatives: int = 8, rng: np.random.Generator | None = None,
                 init_std: float = 0.01):
        super().__init__(num_users, num_items, embedding_dim=embedding_dim,
                         hidden_dim=hidden_dim, sequence_length=sequence_length,
                         rng=rng, init_std=init_std)
        if num_negatives < 1:
            raise ValueError("num_negatives must be positive")
        self.recommended_num_negatives = num_negatives
