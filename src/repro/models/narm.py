"""NARM — Neural Attentive Recommendation Machine (Li et al., CIKM'17).

One of the attention-based recommenders the paper's literature review
covers (Section 2): a GRU encodes the recent items, the last hidden state
forms the *global* representation of the user's current intent, and an
additive attention over all hidden states (conditioned on the last state)
forms the *local* representation.  Their concatenation, projected back to
the item-embedding space, scores the candidates.

NARM belongs to the family whose learned attention weights the paper
questions (Section 7.2), so having it available lets that discussion be
probed directly on the synthetic analogues.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Dropout, Embedding, Linear, Tensor, functional as F, init
from repro.autograd.recurrent import GRU
from repro.models.base import SequentialRecommender

__all__ = ["NARM"]


class NARM(SequentialRecommender):
    """Neural attentive session-based recommender.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions (the user id is unused, as in session-based
        NARM, but kept for interface uniformity).
    embedding_dim:
        Item embedding dimensionality ``d``.
    hidden_dim:
        GRU hidden dimensionality (defaults to ``embedding_dim``).
    sequence_length:
        Number of recent items fed to the encoder.
    dropout:
        Dropout applied to the item embeddings and the combined
        representation.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 hidden_dim: int | None = None, sequence_length: int = 10,
                 dropout: float = 0.25, rng: np.random.Generator | None = None,
                 init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        rng = rng or np.random.default_rng()
        hidden_dim = hidden_dim or embedding_dim

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.pad_id = num_items

        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)
        self.embedding_dropout = Dropout(dropout, rng=rng)
        self.gru = GRU(embedding_dim, hidden_dim, rng=rng)

        # Additive attention: score_t = v^T sigmoid(A1 h_t + A2 h_last).
        self.attention_hidden = init.xavier_uniform((hidden_dim, hidden_dim), rng)
        self.attention_query = init.xavier_uniform((hidden_dim, hidden_dim), rng)
        self.attention_vector = init.xavier_uniform((hidden_dim, 1), rng)

        # Bilinear decoder B of the original paper, expressed as a linear
        # projection of [global; local] into the item-embedding space.
        self.output_projection = Linear(2 * hidden_dim, embedding_dim, rng=rng)
        self.output_dropout = Dropout(dropout, rng=rng)

    # ------------------------------------------------------------------ #
    # Attention
    # ------------------------------------------------------------------ #
    def attention_weights(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Normalized attention weights over the input positions.

        Returns a ``(B, L)`` array; padded positions are NaN so analyses
        (e.g. the Fig. 4-style weight-distribution study) can skip them.
        """
        from repro.autograd import no_grad

        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        with no_grad():
            hidden_states = self._encode(inputs, mask)
            weights = self._attention(hidden_states, mask)
        values = weights.data.copy()
        values[~mask] = np.nan
        return values

    def _encode(self, inputs: np.ndarray, mask: np.ndarray) -> Tensor:
        embedded = self.embedding_dropout(self.item_embeddings(inputs))   # (B, L, d)
        return self.gru(embedded, mask=mask)                              # (B, L, H)

    def _attention(self, hidden_states: Tensor, mask: np.ndarray) -> Tensor:
        """Softmax-normalized additive attention scores, shape ``(B, L)``."""
        last_state = hidden_states[:, -1, :]                              # (B, H)
        projected_hidden = hidden_states.matmul(self.attention_hidden)    # (B, L, H)
        projected_query = last_state.matmul(self.attention_query).expand_dims(1)
        energies = F.sigmoid(projected_hidden + projected_query)
        scores = energies.matmul(self.attention_vector).squeeze(2)        # (B, L)
        scores = F.masked_fill(scores, ~np.asarray(mask, dtype=bool), -1e9)
        return F.softmax(scores, axis=-1)

    # ------------------------------------------------------------------ #
    # SequentialRecommender interface
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        hidden_states = self._encode(inputs, mask)                        # (B, L, H)

        global_representation = hidden_states[:, -1, :]                   # (B, H)
        weights = self._attention(hidden_states, mask)                    # (B, L)
        local_representation = (hidden_states * weights.expand_dims(2)).sum(axis=1)

        combined = Tensor.concatenate(
            [global_representation, local_representation], axis=1
        )
        return self.output_projection(self.output_dropout(combined))     # (B, d)

    def candidate_item_embeddings(self) -> Tensor:
        return self.item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin the padding row after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
