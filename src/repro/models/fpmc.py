"""FPMC — Factorized Personalized Markov Chains (Rendle et al., WWW'10).

First-order Markov-chain baseline from the paper's literature review
(Section 2): the score of candidate ``j`` combines a user-preference term
and a transition term from the most recent item,

``r_ij = u_i · w_j^{UI}  +  v_last · w_j^{LI}``.

Both terms are linear in per-candidate embeddings, so FPMC fits the shared
representation-dot-candidate interface by concatenation.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Tensor
from repro.models.base import SequentialRecommender

__all__ = ["FPMC"]


class FPMC(SequentialRecommender):
    """FPMC baseline (first-order personalized Markov chain)."""

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 input_length: int = 1, rng: np.random.Generator | None = None,
                 init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, input_length)
        rng = rng or np.random.default_rng()
        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.input_length = input_length
        self.pad_id = num_items

        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng, std=init_std)
        # "Last item" embeddings (the LI factor of the Markov transition).
        self.last_item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                              std=init_std, padding_idx=self.pad_id)
        # Candidate factors: one paired with the user, one with the last item.
        self.candidate_user_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                   std=init_std, padding_idx=self.pad_id)
        self.candidate_item_embeddings_table = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                         std=init_std, padding_idx=self.pad_id)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        last_items = inputs[:, -1]
        user_part = self.user_embeddings(users)                       # (B, d)
        transition_part = self.last_item_embeddings(last_items)       # (B, d)
        return Tensor.concatenate([user_part, transition_part], axis=1)

    def candidate_item_embeddings(self) -> Tensor:
        return Tensor.concatenate(
            [self.candidate_user_embeddings.weight, self.candidate_item_embeddings_table.weight],
            axis=1,
        )

    def after_step(self) -> None:
        """Re-pin padding rows after an optimizer step."""
        self.last_item_embeddings.apply_padding_mask()
        self.candidate_user_embeddings.apply_padding_mask()
        self.candidate_item_embeddings_table.apply_padding_mask()
