"""Caser — Convolutional Sequence Embedding Recommendation (Tang & Wang, WSDM'18).

Baseline of the paper (Section 5.1).  Caser embeds the ``L`` most recent
items into an ``L × d`` "image" and applies

* **horizontal filters** of heights ``1..L`` (``n_h`` filters per height)
  that slide over consecutive items and are max-pooled over time — these
  capture union-level sequential patterns;
* **vertical filters** (``n_v`` filters of shape ``L × 1``) that form
  weighted sums over the time axis per latent dimension — these capture
  point-level patterns.

Both feature groups pass through a fully connected layer; the result is
concatenated with the user embedding and scored against per-item output
embeddings with a per-item bias.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Dropout, Embedding, Linear, Tensor, init
from repro.models.base import SequentialRecommender

__all__ = ["Caser"]


class Caser(SequentialRecommender):
    """Caser baseline.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions.
    embedding_dim:
        Item/user embedding dimensionality ``d``.
    sequence_length:
        ``L``, the number of recent items considered.
    num_vertical_filters:
        ``n_v`` vertical filters.
    num_horizontal_filters:
        ``n_h`` horizontal filters *per filter height* (heights 1..L).
    dropout:
        Dropout probability applied to the concatenated conv features.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 sequence_length: int = 5, num_vertical_filters: int = 4,
                 num_horizontal_filters: int = 16, dropout: float = 0.2,
                 rng: np.random.Generator | None = None, init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        if num_vertical_filters < 1 or num_horizontal_filters < 1:
            raise ValueError("filter counts must be positive")
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.pad_id = num_items
        self.num_vertical_filters = num_vertical_filters
        self.num_horizontal_filters = num_horizontal_filters

        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng, std=init_std)
        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)

        # Horizontal filters: one weight matrix of shape (height * d, n_h)
        # per filter height (convolution expressed as a sliding matmul).
        self.horizontal_filters = [
            init.xavier_uniform((height * embedding_dim, num_horizontal_filters), rng)
            for height in range(1, sequence_length + 1)
        ]
        self.horizontal_biases = [
            init.zeros((num_horizontal_filters,)) for _ in range(sequence_length)
        ]
        # Vertical filters: weighted sums over the time axis.
        self.vertical_filters = init.xavier_uniform((num_vertical_filters, sequence_length), rng)

        conv_output_dim = (num_horizontal_filters * sequence_length
                           + num_vertical_filters * embedding_dim)
        self.fc = Linear(conv_output_dim, embedding_dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

        # Output layer: per-item embedding of size 2d (conv features + user
        # embedding) plus a per-item bias, as in the original Caser.
        self.output_item_embeddings = Embedding(num_items + 1, 2 * embedding_dim,
                                                rng=rng, std=init_std,
                                                padding_idx=self.pad_id)
        self.output_item_bias = init.zeros((num_items + 1,))

    # ------------------------------------------------------------------ #
    # Convolutional feature extraction
    # ------------------------------------------------------------------ #
    def _horizontal_features(self, embedded: Tensor) -> Tensor:
        """Max-over-time features of every horizontal filter height."""
        batch, length, dim = embedded.shape
        features = []
        for height in range(1, length + 1):
            windows = []
            for start in range(0, length - height + 1):
                window = embedded[:, start:start + height, :].reshape(batch, height * dim)
                windows.append(window)
            stacked = Tensor.stack(windows, axis=1)                      # (B, T', h*d)
            convolved = stacked.matmul(self.horizontal_filters[height - 1])
            convolved = (convolved + self.horizontal_biases[height - 1]).relu()
            features.append(convolved.max(axis=1))                      # (B, n_h)
        return Tensor.concatenate(features, axis=1)

    def _vertical_features(self, embedded: Tensor) -> Tensor:
        """Weighted sums over the time axis (one set of weights per filter)."""
        batch, length, dim = embedded.shape
        # (n_v, L) @ (B, L, d) -> per filter weighted sum over time.
        outputs = []
        for filter_index in range(self.num_vertical_filters):
            weights = self.vertical_filters[filter_index].reshape(1, length, 1)
            outputs.append((embedded * weights).sum(axis=1))             # (B, d)
        return Tensor.concatenate(outputs, axis=1)                       # (B, n_v * d)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        embedded = self.item_embeddings(inputs)                          # (B, L, d)
        horizontal = self._horizontal_features(embedded)
        vertical = self._vertical_features(embedded)
        conv_features = Tensor.concatenate([horizontal, vertical], axis=1)
        conv_features = self.dropout(conv_features)
        hidden = self.fc(conv_features).relu()                           # (B, d)
        user_vectors = self.user_embeddings(users)                       # (B, d)
        return Tensor.concatenate([hidden, user_vectors], axis=1)        # (B, 2d)

    def candidate_item_embeddings(self) -> Tensor:
        return self.output_item_embeddings.weight

    def item_bias(self) -> Tensor | None:
        return self.output_item_bias

    def after_step(self) -> None:
        """Re-pin padding rows after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
        self.output_item_embeddings.apply_padding_mask()
