"""Item synergies of arbitrary order (paper Eq. 2-5).

The order-2 synergy between items ``j`` and ``k`` is the Hadamard product
of their embeddings (Eq. 2).  Per-item synergies are aggregated by summing
over partners (Eq. 3) and across items by mean pooling (Eq. 4).  Higher
orders are built recursively (Eq. 5):

``c_j^(1) = v_j``
``c_j^(p) = sum_{k != j} c_j^(p-1) ∘ v_k = c_j^(p-1) ∘ (S - v_j)``
``c^(p)   = mean_j c_j^(p)``

where ``S`` is the sum of the (real) item embeddings in the window.  The
closed form with ``S`` avoids the quadratic double loop and is what makes
HAMs as cheap as HAM.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor

__all__ = ["synergy_vectors", "latent_cross", "INNER_AGGREGATIONS", "OUTER_AGGREGATIONS"]

#: Supported aggregations over the partner items ``k != j`` (paper Eq. 3).
INNER_AGGREGATIONS = ("sum", "mean", "max")
#: Supported aggregations over the items ``j`` of the window (paper Eq. 4).
OUTER_AGGREGATIONS = ("mean", "sum", "max")

_NEG_INF = -1e9


def _aggregate_outer(per_item: Tensor, mask3: Tensor, mask: np.ndarray,
                     inverse_counts: Tensor, outer: str) -> Tensor:
    """Aggregate per-item synergy vectors over the window items (Eq. 4)."""
    if outer == "mean":
        return per_item.sum(axis=1) * inverse_counts
    if outer == "sum":
        return per_item.sum(axis=1)
    # max over real items: push padded rows far down before the max.
    offset = Tensor(np.where(mask[:, :, None] > 0, 0.0, _NEG_INF).astype(per_item.dtype))
    return (per_item + offset).max(axis=1)


def synergy_vectors(embeddings: Tensor, mask: np.ndarray, order: int,
                    inner: str = "sum", outer: str = "mean") -> list[Tensor]:
    """Aggregated synergy vectors ``c^(2) .. c^(order)``.

    Parameters
    ----------
    embeddings:
        ``(B, L, d)`` embeddings of the high-order association window
        (padded positions must hold zero vectors).
    mask:
        ``(B, L)`` boolean array marking real items.
    order:
        Maximum synergy order ``p``; ``order < 2`` returns an empty list
        (plain HAM without synergies).
    inner:
        Aggregation over the partner items ``k != j`` in Eq. 3.  The paper
        uses ``sum`` (its default) and reports having also tried weighted
        sum and max pooling; ``mean`` and ``max`` are provided for that
        design-choice ablation.
    outer:
        Aggregation over the items ``j`` in Eq. 4; the paper uses ``mean``.

    Returns
    -------
    list of ``(B, d)`` tensors, one per order from 2 to ``order``.
    """
    if order < 2:
        return []
    if inner not in INNER_AGGREGATIONS:
        raise ValueError(f"inner must be one of {INNER_AGGREGATIONS}, got {inner!r}")
    if outer not in OUTER_AGGREGATIONS:
        raise ValueError(f"outer must be one of {OUTER_AGGREGATIONS}, got {outer!r}")

    mask = np.asarray(mask).astype(embeddings.dtype)
    mask3 = Tensor(mask[:, :, None])
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)        # (B, 1)
    inverse_counts = Tensor((1.0 / counts).astype(embeddings.dtype))
    # Partner counts per item j: number of *other* real items.
    partner_counts = np.maximum(mask.sum(axis=1, keepdims=True) - 1.0, 1.0)  # (B, 1)
    inverse_partner_counts = Tensor((1.0 / partner_counts)[:, :, None].astype(embeddings.dtype))

    real = embeddings * mask3                       # zero out padded rows
    total = real.sum(axis=1, keepdims=True)          # (B, 1, d) = S
    partner_sum = total - real                       # (B, L, d) = S - v_j

    per_item = real                                  # c_j^(1) = v_j
    aggregated: list[Tensor] = []
    for _ in range(2, order + 1):
        if inner in ("sum", "mean"):
            # closed form: sum_{k != j} c_j^(p-1) ∘ v_k = c_j^(p-1) ∘ (S - v_j)
            per_item = per_item * partner_sum
            if inner == "mean":
                per_item = per_item * inverse_partner_counts
        else:
            # max over partners requires the explicit pairwise products.
            per_item = _max_over_partners(per_item, real, mask)
        per_item = per_item * mask3                  # keep padded rows at zero
        aggregated.append(_aggregate_outer(per_item, mask3, mask, inverse_counts, outer))
    return aggregated


def _max_over_partners(per_item: Tensor, real: Tensor, mask: np.ndarray) -> Tensor:
    """``max_{k != j} c_j ∘ v_k`` computed from explicit pairwise products.

    Shapes stay small in practice (the window length ``n_h`` is <= 10 in
    every configuration the paper uses), so the ``(B, L, L, d)`` tensor of
    pairwise products is affordable.
    """
    batch, length, dim = real.shape
    c = per_item.expand_dims(2)                      # (B, L, 1, d)
    v = real.expand_dims(1)                          # (B, 1, L, d)
    pairwise = c * v                                 # (B, L, L, d)
    # Exclude k == j and padded partners from the max.
    partner_mask = np.broadcast_to(mask[:, None, :, None] > 0, (batch, length, length, dim)).copy()
    diagonal = np.eye(length, dtype=bool)[None, :, :, None]
    partner_mask &= ~np.broadcast_to(diagonal, partner_mask.shape)
    offset = Tensor(np.where(partner_mask, 0.0, _NEG_INF).astype(pairwise.dtype))
    maxed = (pairwise + offset).max(axis=2)          # (B, L, d)
    # Items with no valid partner produce -inf rows; zero them out.
    no_partner = ~partner_mask.any(axis=2)
    if no_partner.any():
        maxed = maxed * Tensor((~no_partner).astype(maxed.dtype))
    return maxed


def latent_cross(high_order: Tensor, synergies: list[Tensor]) -> Tensor:
    """Combine item associations and synergies (paper Eq. 6).

    ``s = h + sum_k c^(k) ∘ h`` — the synergy vectors act as multiplicative
    corrections ("latent cross") that strengthen the latent features of the
    pooled high-order association vector.
    """
    combined = high_order
    for synergy in synergies:
        combined = combined + synergy * high_order
    return combined
