"""Item-to-item neighborhood recommender (ItemKNN).

A classic non-parametric baseline: two items are similar when many users
interacted with both, and the next item is predicted to be one that is
similar to the user's most recent items.  Similarities are cosine-
normalized co-occurrence counts, optionally restricted to co-occurrences
within a sliding window of the training sequences so the neighborhood
reflects *sequential* proximity rather than whole-history co-purchase.

Not part of the paper's tables, but a useful sanity floor: the studies the
paper cites on "simple vs deep" recommenders ([3], [4] in the manuscript)
use exactly this family of neighborhood methods as the simple reference.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.models.nonparametric import NonParametricRecommender

__all__ = ["ItemKNN"]


class ItemKNN(NonParametricRecommender):
    """Cosine item-item neighborhood model.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions.
    input_length:
        Number of most recent items whose neighborhoods are aggregated at
        scoring time.
    cooccurrence_window:
        Two items co-occur when they appear within this many positions of
        each other in a training sequence.  ``None`` counts co-occurrence
        over the whole sequence (classical user-basket ItemKNN).
    top_k_neighbors:
        Keep only the ``top_k_neighbors`` most similar items per item
        (sparsifies the similarity matrix and usually improves accuracy).
    recency_decay:
        Multiplicative weight applied per step of recency at scoring time:
        the most recent input item has weight 1, the one before it
        ``recency_decay``, then ``recency_decay**2`` and so on.
    """

    def __init__(self, num_users: int, num_items: int, input_length: int = 5,
                 cooccurrence_window: int | None = 5, top_k_neighbors: int = 100,
                 recency_decay: float = 0.8):
        super().__init__(num_users, num_items, input_length=input_length)
        if cooccurrence_window is not None and cooccurrence_window < 1:
            raise ValueError("cooccurrence_window must be positive or None")
        if top_k_neighbors < 1:
            raise ValueError("top_k_neighbors must be positive")
        if not 0.0 < recency_decay <= 1.0:
            raise ValueError("recency_decay must be in (0, 1]")
        self.cooccurrence_window = cooccurrence_window
        self.top_k_neighbors = top_k_neighbors
        self.recency_decay = recency_decay
        self._similarity: sparse.csr_matrix | None = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit_counts(self, sequences: list[list[int]]) -> "ItemKNN":
        """Build the cosine similarity matrix from training ``sequences``."""
        self._validate_sequences(sequences)
        cooc = sparse.lil_matrix((self.num_items, self.num_items), dtype=np.float64)
        counts = np.zeros(self.num_items, dtype=np.float64)

        for seq in sequences:
            items = np.asarray(seq, dtype=np.int64)
            np.add.at(counts, items, 1.0)
            for position, item in enumerate(items):
                if self.cooccurrence_window is None:
                    partners = np.concatenate([items[:position], items[position + 1:]])
                else:
                    start = max(0, position - self.cooccurrence_window)
                    end = min(len(items), position + self.cooccurrence_window + 1)
                    partners = np.concatenate(
                        [items[start:position], items[position + 1:end]]
                    )
                for partner in partners:
                    cooc[item, partner] += 1.0

        cooc = cooc.tocsr()
        norms = np.sqrt(np.maximum(counts, 1.0))
        scale = sparse.diags(1.0 / norms)
        similarity = scale @ cooc @ scale
        self._similarity = self._keep_top_neighbors(similarity.tocsr())
        self._fitted = True
        return self

    def _keep_top_neighbors(self, similarity: sparse.csr_matrix) -> sparse.csr_matrix:
        """Zero all but the ``top_k_neighbors`` largest entries of each row."""
        pruned = similarity.tolil()
        for row in range(self.num_items):
            data = similarity.getrow(row)
            if data.nnz <= self.top_k_neighbors:
                continue
            values = data.data
            columns = data.indices
            keep = np.argsort(values)[-self.top_k_neighbors:]
            pruned.rows[row] = sorted(columns[keep].tolist())
            lookup = dict(zip(columns.tolist(), values.tolist()))
            pruned.data[row] = [lookup[column] for column in pruned.rows[row]]
        return pruned.tocsr()

    # ------------------------------------------------------------------ #
    # Scoring
    # ------------------------------------------------------------------ #
    def neighbors(self, item: int, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` most similar items to ``item`` as ``(item, similarity)`` pairs.

        The item itself is never reported as its own neighbor, even when a
        sequence contains repeated interactions with it.
        """
        self._require_fitted()
        if not 0 <= item < self.num_items:
            raise ValueError(f"item id {item} outside [0, {self.num_items})")
        row = self._similarity.getrow(item)
        order = np.argsort(row.data)[::-1]
        results = []
        for index in order:
            neighbor = int(row.indices[index])
            if neighbor == item:
                continue
            results.append((neighbor, float(row.data[index])))
            if len(results) == k:
                break
        return results

    def score_all(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Aggregate the neighborhoods of the recent input items."""
        self._require_fitted()
        inputs = np.asarray(inputs, dtype=np.int64)
        scores = np.zeros((inputs.shape[0], self.num_items), dtype=np.float64)
        length = inputs.shape[1]
        for row in range(inputs.shape[0]):
            for position in range(length):
                item = inputs[row, length - 1 - position]
                if item == self.pad_id:
                    continue
                weight = self.recency_decay ** position
                scores[row] += weight * self._similarity.getrow(item).toarray().ravel()
        return scores
