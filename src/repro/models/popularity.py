"""Popularity baseline (POP).

Ranks every item by its global interaction count in the training data.
Not part of the paper's comparison tables, but a standard sanity baseline:
a learned sequential model that cannot beat POP on a dataset has learned
nothing useful.
"""

from __future__ import annotations

import numpy as np

from repro.models.nonparametric import NonParametricRecommender

__all__ = ["Popularity"]


class Popularity(NonParametricRecommender):
    """Non-parametric popularity recommender.

    The model ignores the user and the recent items; :meth:`fit_counts`
    must be called with the training sequences before scoring.
    """

    def __init__(self, num_users: int, num_items: int, input_length: int = 5,
                 rng: np.random.Generator | None = None):
        super().__init__(num_users, num_items, input_length=input_length)
        self._scores = np.zeros(num_items, dtype=np.float64)

    def fit_counts(self, sequences: list[list[int]]) -> "Popularity":
        """Count item occurrences in ``sequences`` (the training split)."""
        self._validate_sequences(sequences)
        counts = np.zeros(self.num_items, dtype=np.float64)
        for seq in sequences:
            if seq:
                np.add.at(counts, np.asarray(seq, dtype=np.int64), 1.0)
        self._scores = counts
        self._fitted = True
        return self

    def item_counts(self) -> np.ndarray:
        """Raw training counts per item (after :meth:`fit_counts`)."""
        self._require_fitted()
        return self._scores.copy()

    def score_all(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        self._require_fitted()
        batch = len(np.asarray(users))
        return np.tile(self._scores, (batch, 1))
