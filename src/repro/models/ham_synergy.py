"""HAMs — Hybrid Associations Model with item synergies (paper Section 4.2.2).

HAMs extends HAM by modelling synergies among the items of the high-order
association window with Hadamard products of arbitrary order (Eq. 2-5) and
combining them with the pooled association vector through a latent cross
(Eq. 6).  The scoring function becomes

``r_ij = u_i · w_j  +  s_i · w_j  +  o_i · w_j``            (Eq. 8)

with ``s = h + sum_{k=2..p} c^(k) ∘ h``.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.models.ham import HAM
from repro.models.synergy import (
    INNER_AGGREGATIONS,
    OUTER_AGGREGATIONS,
    latent_cross,
    synergy_vectors,
)

__all__ = ["HAMSynergy"]


class HAMSynergy(HAM):
    """HAMs_x / HAMs_m and the ablated variants of the paper's Section 6.6.

    Parameters
    ----------
    synergy_order:
        Maximum order ``p`` of the item synergies; ``p = 1`` disables the
        synergy term entirely and recovers plain HAM (the paper's
        parameter studies sweep ``p`` from 1 to 4).
    synergy_inner, synergy_outer:
        Aggregations used in Eq. 3 (over partner items) and Eq. 4 (over
        window items).  The paper's final model uses ``sum`` and ``mean``;
        the alternatives it reports having tried (weighted/mean sum, max
        pooling) are available for the design-choice ablation.
    All other parameters as in :class:`~repro.models.ham.HAM`.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 n_h: int = 5, n_l: int = 2, synergy_order: int = 2,
                 pooling: str = "mean", use_user_embedding: bool = True,
                 synergy_inner: str = "sum", synergy_outer: str = "mean",
                 rng: np.random.Generator | None = None, init_std: float = 0.01):
        if synergy_order < 1:
            raise ValueError("synergy_order must be >= 1")
        if synergy_order > n_h:
            raise ValueError("synergy_order cannot exceed n_h (Eq. 5 requires p <= n_h)")
        if synergy_inner not in INNER_AGGREGATIONS:
            raise ValueError(f"synergy_inner must be one of {INNER_AGGREGATIONS}")
        if synergy_outer not in OUTER_AGGREGATIONS:
            raise ValueError(f"synergy_outer must be one of {OUTER_AGGREGATIONS}")
        super().__init__(
            num_users=num_users, num_items=num_items, embedding_dim=embedding_dim,
            n_h=n_h, n_l=n_l, pooling=pooling,
            use_user_embedding=use_user_embedding, rng=rng, init_std=init_std,
        )
        self.synergy_order = synergy_order
        self.synergy_inner = synergy_inner
        self.synergy_outer = synergy_outer

    def synergy_terms(self, inputs: np.ndarray) -> list[Tensor]:
        """Aggregated synergy vectors ``c^(2) .. c^(p)`` for each instance."""
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        embedded = self.source_item_embeddings(inputs)
        return synergy_vectors(embedded, mask, self.synergy_order,
                               inner=self.synergy_inner, outer=self.synergy_outer)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        """``u + s + o`` with ``s`` the latent-cross-enhanced association."""
        inputs = np.asarray(inputs, dtype=np.int64)
        high_order, low_order = self.association_embeddings(inputs)
        synergies = self.synergy_terms(inputs)
        enhanced = latent_cross(high_order, synergies)
        representation = enhanced
        if low_order is not None:
            representation = representation + low_order
        if self.use_user_embedding:
            representation = representation + self.user_embeddings(np.asarray(users, dtype=np.int64))
        return representation

    @property
    def variant_name(self) -> str:
        """Paper-style name, e.g. ``HAMs_m`` / ``HAMs_m-o`` / ``HAMs_m-u``."""
        suffix = "m" if self.pooling_name == "mean" else "x"
        name = f"HAMs_{suffix}"
        if self.n_l == 0:
            name += "-o"
        if not self.use_user_embedding:
            name += "-u"
        return name
