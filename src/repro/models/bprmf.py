"""BPR-MF — Bayesian Personalized Ranking matrix factorization (Rendle et al., 2012).

A non-sequential latent-factor baseline: the score of item ``j`` for user
``i`` is simply ``u_i · w_j``.  Included as a reference point for how much
of the performance comes from long-term preferences alone (the paper's
ablation HAMs_m-o/-u probes the same question from the other direction).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Tensor
from repro.models.base import SequentialRecommender

__all__ = ["BPRMF"]


class BPRMF(SequentialRecommender):
    """Matrix-factorization recommender trained with the shared BPR trainer."""

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 input_length: int = 1, rng: np.random.Generator | None = None,
                 init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, input_length)
        rng = rng or np.random.default_rng()
        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.input_length = input_length
        self.pad_id = num_items
        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng, std=init_std)
        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        # The recent items are ignored: BPR-MF models long-term preference only.
        return self.user_embeddings(np.asarray(users, dtype=np.int64))

    def candidate_item_embeddings(self) -> Tensor:
        return self.item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin the padding row after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
