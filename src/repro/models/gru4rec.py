"""GRU4Rec-style recurrent baseline (Hidasi et al., ICLR'16) — extension.

The paper's literature review covers RNN recommenders (GRU4Rec,
GRU4Rec++); its experiments omit them because HGN had already been shown
to outperform them.  This extension implements a GRU4Rec-style model on
the shared interface so the claim can be probed on the synthetic
analogues as well: the most recent items are embedded, run through a GRU,
and the final hidden state is scored against the item embedding table.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Linear, Tensor
from repro.autograd.recurrent import GRU
from repro.models.base import SequentialRecommender

__all__ = ["GRU4Rec"]


class GRU4Rec(SequentialRecommender):
    """Recurrent sequential recommender.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions (the user id is unused, as in session-based
        GRU4Rec, but kept for interface uniformity).
    embedding_dim:
        Item embedding dimensionality.
    hidden_dim:
        GRU hidden-state dimensionality (defaults to ``embedding_dim``).
    sequence_length:
        Number of recent items fed to the recurrence.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 hidden_dim: int | None = None, sequence_length: int = 10,
                 rng: np.random.Generator | None = None, init_std: float = 0.01,
                 dtype=None):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        rng = rng or np.random.default_rng()
        hidden_dim = hidden_dim or embedding_dim

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.hidden_dim = hidden_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.pad_id = num_items

        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)
        self.gru = GRU(embedding_dim, hidden_dim, rng=rng)
        # Project the hidden state back to the item-embedding space so the
        # candidate table can be shared with the input embeddings.
        self.output_projection = Linear(hidden_dim, embedding_dim, rng=rng)
        if dtype is not None:
            self.astype(dtype)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        embedded = self.item_embeddings(inputs)                       # (B, L, d)
        final_state = self.gru.final_state(embedded, mask=mask)       # (B, hidden)
        return self.output_projection(final_state)                    # (B, d)

    def candidate_item_embeddings(self) -> Tensor:
        return self.item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin the padding row after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
