"""Mask-aware pooling operators (paper Eq. 1).

HAM collapses the embeddings of the ``n_h`` (or ``n_l``) most recent
items into a single vector with mean or max pooling.  Because short user
histories are left-padded, both operators must ignore padded positions:
the mean divides by the number of real items and the max excludes padded
rows from the maximum.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor

__all__ = ["masked_mean_pool", "masked_max_pool", "POOLING_FUNCTIONS", "get_pooling"]

_NEG_INF = -1e9


def masked_mean_pool(embeddings: Tensor, mask: np.ndarray) -> Tensor:
    """Mean over the sequence axis, counting only unmasked positions.

    Parameters
    ----------
    embeddings:
        ``(B, L, d)`` item embeddings.
    mask:
        ``(B, L)`` boolean array, True for real (non-padding) items.  Rows
        with no real item produce a zero vector.
    """
    mask = np.asarray(mask).astype(embeddings.dtype)
    counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)  # (B, 1)
    masked = embeddings * Tensor(mask[:, :, None])
    return masked.sum(axis=1) * Tensor((1.0 / counts).astype(embeddings.dtype))


def masked_max_pool(embeddings: Tensor, mask: np.ndarray) -> Tensor:
    """Max over the sequence axis, ignoring masked positions.

    Padded positions are pushed to a large negative value before the max
    so they can never win; rows with no real item produce a zero vector.
    """
    mask = np.asarray(mask, dtype=bool)
    offset = np.where(mask[:, :, None], 0.0, _NEG_INF).astype(embeddings.dtype)
    shifted = embeddings + Tensor(offset)
    pooled = shifted.max(axis=1)
    # Rows without any real item would be -inf; zero them out (no gradient
    # flows there anyway because the max picked a padded position whose
    # embedding is pinned to zero).
    empty_rows = ~mask.any(axis=1)
    if empty_rows.any():
        keep = Tensor((~empty_rows)[:, None].astype(pooled.dtype))
        pooled = pooled * keep
    return pooled


POOLING_FUNCTIONS = {
    "mean": masked_mean_pool,
    "max": masked_max_pool,
}


def get_pooling(name: str):
    """Resolve a pooling function by name (``"mean"`` or ``"max"``)."""
    key = name.lower()
    if key not in POOLING_FUNCTIONS:
        raise ValueError(
            f"unknown pooling {name!r}; expected one of {sorted(POOLING_FUNCTIONS)}"
        )
    return POOLING_FUNCTIONS[key]
