"""HGN — Hierarchical Gating Network (Ma, Kang & Liu, KDD'19).

The paper's strongest baseline (Section 5.1).  HGN scores a candidate item
from three additive parts:

* **long-term**: the user embedding dotted with the candidate embedding;
* **short-term (gated)**: the ``L`` most recent item embeddings pass
  through a *feature gate* (per-dimension sigmoid gate conditioned on the
  item and the user) and an *instance gate* (per-item sigmoid weight
  conditioned on the item and the user), are average-pooled and dotted
  with the candidate embedding;
* **item-item product**: the sum of the raw recent-item embeddings dotted
  with the candidate embedding.

The instance-gate weights are the quantities analysed in the paper's
Fig. 4 ("attention weight" distributions); :meth:`instance_gate_weights`
exposes them for that analysis.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Tensor, functional as F, init
from repro.models.base import SequentialRecommender
from repro.models.pooling import masked_mean_pool

__all__ = ["HGN"]


class HGN(SequentialRecommender):
    """HGN baseline.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions.
    embedding_dim:
        Embedding dimensionality ``d``.
    sequence_length:
        ``L``, the number of recent items fed through the gates.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 sequence_length: int = 5, rng: np.random.Generator | None = None,
                 init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.pad_id = num_items

        self.user_embeddings = Embedding(num_users, embedding_dim, rng=rng, std=init_std)
        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)
        self.target_item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                std=init_std, padding_idx=self.pad_id)

        # Feature gating parameters: g = sigmoid(e W1 + u W2 + b).
        self.feature_gate_item = init.xavier_uniform((embedding_dim, embedding_dim), rng)
        self.feature_gate_user = init.xavier_uniform((embedding_dim, embedding_dim), rng)
        self.feature_gate_bias = init.zeros((embedding_dim,))

        # Instance gating parameters: a = sigmoid(gated · w3 + u W4).
        self.instance_gate_item = init.xavier_uniform((embedding_dim, 1), rng)
        self.instance_gate_user = init.xavier_uniform((embedding_dim, sequence_length), rng)

    # ------------------------------------------------------------------ #
    # Gating
    # ------------------------------------------------------------------ #
    def _gated_items(self, users: np.ndarray, inputs: np.ndarray) -> tuple[Tensor, Tensor, np.ndarray]:
        """Return (feature-gated item embeddings, instance gate weights, mask)."""
        users = np.asarray(users, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        item_vectors = self.item_embeddings(inputs)                    # (B, L, d)
        user_vectors = self.user_embeddings(users)                     # (B, d)

        # Feature gate: per item, per latent dimension.
        feature_gate = F.sigmoid(
            item_vectors.matmul(self.feature_gate_item)
            + user_vectors.matmul(self.feature_gate_user).expand_dims(1)
            + self.feature_gate_bias
        )
        gated = item_vectors * feature_gate                             # (B, L, d)

        # Instance gate: one scalar weight per recent item.
        instance_scores = (
            gated.matmul(self.instance_gate_item).squeeze(2)            # (B, L)
            + user_vectors.matmul(self.instance_gate_user)              # (B, L)
        )
        instance_gate = F.sigmoid(instance_scores)
        return gated, instance_gate, mask

    def instance_gate_weights(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Instance-gate weights used in the paper's Fig. 4 analysis.

        Returns a ``(B, L)`` array of weights in (0, 1); padded positions
        are reported as NaN so the analysis can ignore them.
        """
        from repro.autograd import no_grad

        with no_grad():
            _, instance_gate, mask = self._gated_items(users, inputs)
        weights = instance_gate.data.copy()
        weights[~mask] = np.nan
        return weights

    # ------------------------------------------------------------------ #
    # SequentialRecommender interface
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        gated, instance_gate, mask = self._gated_items(users, inputs)

        weighted = gated * instance_gate.expand_dims(2)                 # (B, L, d)
        short_term = masked_mean_pool(weighted, mask)                   # (B, d)

        # Item-item product term: sum of raw recent-item embeddings.
        raw = self.item_embeddings(inputs)
        item_item = (raw * Tensor(mask.astype(raw.dtype)[:, :, None])).sum(axis=1)

        user_vectors = self.user_embeddings(users)
        return user_vectors + short_term + item_item

    def candidate_item_embeddings(self) -> Tensor:
        return self.target_item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin padding rows after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
        self.target_item_embeddings.apply_padding_mask()
