"""Base class for count-based (non-parametric) recommenders.

The paper's comparison focuses on learned models, but recommendation
studies routinely include non-parametric references (popularity ranking,
item-to-item neighborhoods, count-based Markov chains): a learned
sequential model that cannot beat them has not learned anything useful
from the sequence structure.  These models have no gradients; they are
"fitted" by counting over the training sequences, which the shared
:class:`~repro.training.trainer.Trainer` does by calling
:meth:`fit_counts` instead of running the BPR loop.
"""

from __future__ import annotations

import numpy as np

from repro.models.base import SequentialRecommender

__all__ = ["NonParametricRecommender"]


class NonParametricRecommender(SequentialRecommender):
    """A recommender fitted by counting rather than by gradient descent.

    Sub-classes implement :meth:`fit_counts` (called once with the
    training sequences) and :meth:`score_all`; the gradient-based parts of
    the :class:`SequentialRecommender` interface are explicitly disabled.
    """

    def __init__(self, num_users: int, num_items: int, input_length: int = 5):
        super().__init__()
        if num_users < 1 or num_items < 1:
            raise ValueError("num_users and num_items must be positive")
        if input_length < 1:
            raise ValueError("input_length must be positive")
        self.num_users = num_users
        self.num_items = num_items
        self.input_length = input_length
        self.pad_id = num_items
        self._fitted = False

    # ------------------------------------------------------------------ #
    # Interface to implement
    # ------------------------------------------------------------------ #
    def fit_counts(self, sequences: list[list[int]]) -> "NonParametricRecommender":
        """Fit the model from per-user training ``sequences``."""
        raise NotImplementedError

    def score_all(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Scores of every real item, shape ``(B, num_items)``."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Gradient-based interface is not meaningful here
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users, inputs):  # noqa: D102
        raise NotImplementedError(
            f"{self.__class__.__name__} has no learned representation"
        )

    def candidate_item_embeddings(self):  # noqa: D102
        raise NotImplementedError(
            f"{self.__class__.__name__} has no item embeddings"
        )

    def score_items(self, users, inputs, items):
        """Not supported: count-based models are not trained with BPR."""
        raise NotImplementedError(
            f"{self.__class__.__name__} is not trained with BPR"
        )

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit_counts` has been called."""
        return self._fitted

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"call fit_counts() before scoring with {self.__class__.__name__}"
            )

    def _validate_sequences(self, sequences: list[list[int]]) -> None:
        for seq in sequences:
            for item in seq:
                if not 0 <= item < self.num_items:
                    raise ValueError(
                        f"item id {item} outside [0, {self.num_items})"
                    )

    def describe(self) -> str:
        """Human-readable model summary used in logs and reports."""
        status = "fitted" if self._fitted else "unfitted"
        return (
            f"{self.__class__.__name__}(users={self.num_users}, items={self.num_items}, "
            f"input_length={self.input_length}, {status})"
        )
