"""SASRec — Self-Attentive Sequential Recommendation (Kang & McAuley, ICDM'18).

Baseline of the paper (Section 5.1).  SASRec embeds the ``n`` most recent
items, adds learned positional embeddings and runs a stack of
Transformer-style blocks (causal multi-head self-attention + point-wise
feed-forward network, each with residual connections and layer
normalization).  The hidden state at the last position is the user's
sequence representation; candidates are scored against the shared item
embedding table.

The hyperparameters the HAM paper sweeps — embedding dimension ``d``,
maximum sequence length ``n`` and number of attention heads ``h`` — are
exposed directly (Appendix Table A1/A2).
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Dropout, Embedding, LayerNorm, Linear, Module, Tensor, functional as F, init
from repro.models.base import SequentialRecommender

__all__ = ["SASRec"]


class _SelfAttentionBlock(Module):
    """One SASRec block: causal multi-head attention + feed-forward."""

    def __init__(self, dim: int, num_heads: int, dropout: float,
                 rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError("embedding_dim must be divisible by num_heads")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.attention_norm = LayerNorm(dim)
        self.ffn_inner = Linear(dim, dim, rng=rng)
        self.ffn_outer = Linear(dim, dim, rng=rng)
        self.ffn_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)

    def forward(self, hidden: Tensor, causal_mask: np.ndarray) -> Tensor:
        batch, length, _ = hidden.shape
        normed = self.attention_norm(hidden)
        queries = self._split_heads(self.query(normed), batch, length)
        keys = self._split_heads(self.key(hidden), batch, length)
        values = self._split_heads(self.value(hidden), batch, length)
        attended = F.scaled_dot_product_attention(queries, keys, values, mask=causal_mask)
        attended = self._merge_heads(attended, batch, length)
        hidden = hidden + self.dropout(attended)

        normed = self.ffn_norm(hidden)
        transformed = self.ffn_outer(self.dropout(self.ffn_inner(normed).relu()))
        return hidden + self.dropout(transformed)


class SASRec(SequentialRecommender):
    """SASRec baseline.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions (the user id is unused by SASRec but kept for
        interface uniformity).
    embedding_dim:
        Hidden dimensionality ``d``.
    sequence_length:
        Maximum sequence length ``n``.
    num_heads:
        Number of attention heads ``h``.
    num_blocks:
        Number of stacked self-attention blocks.
    dropout:
        Dropout probability inside the blocks.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 sequence_length: int = 10, num_heads: int = 1, num_blocks: int = 2,
                 dropout: float = 0.2, rng: np.random.Generator | None = None,
                 init_std: float = 0.01, dtype=None):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, sequence_length)
        if num_blocks < 1:
            raise ValueError("num_blocks must be positive")
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.sequence_length = sequence_length
        self.input_length = sequence_length
        self.num_heads = num_heads
        self.num_blocks = num_blocks
        self.pad_id = num_items

        self.item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                         std=init_std, padding_idx=self.pad_id)
        self.position_embeddings = init.normal((sequence_length, embedding_dim), rng, std=init_std)
        self.input_dropout = Dropout(dropout, rng=rng)
        self.blocks = [
            _SelfAttentionBlock(embedding_dim, num_heads, dropout, rng)
            for _ in range(num_blocks)
        ]
        self.final_norm = LayerNorm(embedding_dim)

        # Causal mask: position i may only attend to positions <= i.
        self._causal_mask = np.triu(np.ones((sequence_length, sequence_length), dtype=bool), k=1)
        if dtype is not None:
            self.astype(dtype)

    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        inputs = np.asarray(inputs, dtype=np.int64)
        if inputs.shape[1] != self.sequence_length:
            raise ValueError(
                f"SASRec expects {self.sequence_length} input items, got {inputs.shape[1]}"
            )
        hidden = self.item_embeddings(inputs) + self.position_embeddings
        # Zero out padded positions so they contribute nothing downstream.
        padding_mask = (inputs != self.pad_id).astype(hidden.dtype)[:, :, None]
        hidden = hidden * Tensor(padding_mask)
        hidden = self.input_dropout(hidden)
        for block in self.blocks:
            hidden = block(hidden, self._causal_mask)
            hidden = hidden * Tensor(padding_mask)
        hidden = self.final_norm(hidden)
        return hidden[:, -1, :]                              # last position

    def candidate_item_embeddings(self) -> Tensor:
        return self.item_embeddings.weight

    def after_step(self) -> None:
        """Re-pin the padding row after an optimizer step."""
        self.item_embeddings.apply_padding_mask()
