"""Fossil — similarity models fused with higher-order Markov chains
(He & McAuley, ICDM'16).

The higher-order Markov-chain baseline of the paper's literature review
(Section 2, reference [7]).  Fossil scores a candidate ``j`` from two
factorized parts:

* a **similarity (FISM) term**: the normalized sum of the embeddings of
  every item in the user's history, dotted with the candidate embedding —
  long-term preference without an explicit user vector;
* a **higher-order Markov term**: the embeddings of the last ``L`` items,
  each weighted by a personalized mixing weight
  ``eta_k = eta_global_k + eta_user_k``, dotted with the candidate.

Both parts share the candidate ("target") item embedding table, so Fossil
fits the shared representation-dot-candidate interface directly.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Embedding, Tensor, init
from repro.autograd.sparse import IndexedRows
from repro.models.base import SequentialRecommender

__all__ = ["Fossil"]


class Fossil(SequentialRecommender):
    """Factorized sequential model with personalized high-order weights.

    Parameters
    ----------
    num_users, num_items:
        Dataset dimensions.
    embedding_dim:
        Latent dimensionality ``d``.
    markov_order:
        ``L``, the number of recent items in the Markov term (also the
        number of recent items the model consumes).
    similarity_alpha:
        Exponent of the FISM normalization ``1 / |history|^alpha``;
        ``alpha = 0.5`` follows the original paper.
    """

    def __init__(self, num_users: int, num_items: int, embedding_dim: int = 64,
                 markov_order: int = 3, similarity_alpha: float = 0.5,
                 rng: np.random.Generator | None = None, init_std: float = 0.01):
        super().__init__()
        self._validate_dims(num_users, num_items, embedding_dim, markov_order)
        if not 0.0 <= similarity_alpha <= 1.0:
            raise ValueError("similarity_alpha must be in [0, 1]")
        rng = rng or np.random.default_rng()

        self.num_users = num_users
        self.num_items = num_items
        self.embedding_dim = embedding_dim
        self.markov_order = markov_order
        self.input_length = markov_order
        self.similarity_alpha = similarity_alpha
        self.pad_id = num_items

        # Source ("P") and candidate ("Q") item factors plus an item bias.
        self.source_item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                std=init_std, padding_idx=self.pad_id)
        self.target_item_embeddings = Embedding(num_items + 1, embedding_dim, rng=rng,
                                                std=init_std, padding_idx=self.pad_id)
        self.item_biases = init.zeros((num_items + 1,))

        # Markov mixing weights: a global vector plus a per-user offset.
        self.global_markov_weights = init.normal((markov_order,), rng, std=init_std)
        self.user_markov_weights = init.normal((num_users, markov_order), rng, std=init_std)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def markov_weights(self, users: np.ndarray) -> Tensor:
        """Personalized mixing weights ``eta_global + eta_user``, ``(B, L)``."""
        users = np.asarray(users, dtype=np.int64)
        return self.user_markov_weights.take_rows(users) + self.global_markov_weights

    # ------------------------------------------------------------------ #
    # SequentialRecommender interface
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        users = np.asarray(users, dtype=np.int64)
        inputs = np.asarray(inputs, dtype=np.int64)
        mask = inputs != self.pad_id
        embedded = self.source_item_embeddings(inputs)                    # (B, L, d)

        # FISM similarity term: 1/|H|^alpha * sum of history embeddings.
        counts = np.maximum(mask.sum(axis=1, keepdims=True), 1.0)
        normalizer = 1.0 / np.power(counts, self.similarity_alpha)        # (B, 1)
        masked = embedded * Tensor(mask.astype(embedded.dtype)[:, :, None])
        similarity_part = masked.sum(axis=1) * Tensor(normalizer.astype(embedded.dtype))  # (B, d)

        # Higher-order Markov term with personalized per-lag weights.  The
        # weight of position t applies to the item t steps from the end,
        # and padded positions are zeroed by the mask.
        weights = self.markov_weights(users)                              # (B, L)
        weighted = masked * weights.expand_dims(2)
        markov_part = weighted.sum(axis=1)                                # (B, d)

        return similarity_part + markov_part

    def candidate_item_embeddings(self) -> Tensor:
        return self.target_item_embeddings.weight

    def item_bias(self) -> Tensor:
        return self.item_biases

    def after_step(self) -> None:
        """Re-pin padding rows after an optimizer step."""
        self.source_item_embeddings.apply_padding_mask()
        self.target_item_embeddings.apply_padding_mask()
        self.item_biases.data[self.pad_id] = 0.0
        grad = self.item_biases.grad
        if grad is not None:
            if isinstance(grad, IndexedRows):
                grad.zero_rows(self.pad_id)
            else:
                grad[self.pad_id] = 0.0
