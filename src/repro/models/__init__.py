"""Sequential recommendation models.

The paper's contribution (the HAM family) and the three state-of-the-art
baselines it compares against, plus simple reference recommenders:

* :class:`~repro.models.ham.HAM` — HAMx / HAMm (Section 4.2.1).
* :class:`~repro.models.ham_synergy.HAMSynergy` — HAMs_x / HAMs_m with
  order-p item synergies and latent cross (Section 4.2.2), including the
  ablated variants of Section 6.6.
* :class:`~repro.models.caser.Caser` — convolutional sequence embedding.
* :class:`~repro.models.sasrec.SASRec` — self-attention sequential model.
* :class:`~repro.models.hgn.HGN` — hierarchical gating network.
* :class:`~repro.models.popularity.Popularity`,
  :class:`~repro.models.bprmf.BPRMF`,
  :class:`~repro.models.fpmc.FPMC` — reference baselines from the
  literature review.

Extension baselines covered by the paper's literature review (Section 2)
but not rerun in its tables are also available:

* :class:`~repro.models.gru4rec.GRU4Rec` and
  :class:`~repro.models.gru4rec_plus.GRU4RecPlus` — recurrent models.
* :class:`~repro.models.narm.NARM`, :class:`~repro.models.stamp.STAMP` —
  attention-based models.
* :class:`~repro.models.nextitrec.NextItRec` — dilated-CNN generative model.
* :class:`~repro.models.fossil.Fossil` — similarity + high-order Markov.
* :class:`~repro.models.itemknn.ItemKNN`,
  :class:`~repro.models.markov.MarkovChain` — count-based references.

All learned models implement the
:class:`~repro.models.base.SequentialRecommender` interface: a learned
per-(user, recent-items) representation dotted with candidate-item
embeddings, so the same trainer and evaluator drive every method.
Count-based models implement
:class:`~repro.models.nonparametric.NonParametricRecommender` instead and
are fitted from counts.
"""

from repro.models.base import FrozenScorer, SequentialRecommender
from repro.models.nonparametric import NonParametricRecommender
from repro.models.ham import HAM
from repro.models.ham_synergy import HAMSynergy
from repro.models.caser import Caser
from repro.models.sasrec import SASRec
from repro.models.hgn import HGN
from repro.models.gru4rec import GRU4Rec
from repro.models.gru4rec_plus import GRU4RecPlus
from repro.models.narm import NARM
from repro.models.stamp import STAMP
from repro.models.nextitrec import NextItRec
from repro.models.fossil import Fossil
from repro.models.itemknn import ItemKNN
from repro.models.markov import MarkovChain
from repro.models.popularity import Popularity
from repro.models.bprmf import BPRMF
from repro.models.fpmc import FPMC
from repro.models.registry import (
    EXTENSION_METHODS,
    HAM_VARIANTS,
    MODEL_REGISTRY,
    PAPER_METHODS,
    create_model,
)

__all__ = [
    "SequentialRecommender",
    "FrozenScorer",
    "NonParametricRecommender",
    "HAM",
    "HAMSynergy",
    "Caser",
    "SASRec",
    "HGN",
    "GRU4Rec",
    "GRU4RecPlus",
    "NARM",
    "STAMP",
    "NextItRec",
    "Fossil",
    "ItemKNN",
    "MarkovChain",
    "Popularity",
    "BPRMF",
    "FPMC",
    "MODEL_REGISTRY",
    "PAPER_METHODS",
    "HAM_VARIANTS",
    "EXTENSION_METHODS",
    "create_model",
]
