"""Common interface of all sequential recommenders.

Every model in the reproduction scores a candidate item ``j`` for user
``i`` as the dot product of a learned representation of the pair
``(user, recent items)`` with a candidate-item embedding ``w_j`` (plus an
optional per-item bias).  This mirrors the linear scoring function of HAM
(Eq. 7/8) and the output layers of Caser, SASRec and HGN, and lets one
trainer and one evaluator drive every method.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Module, Tensor, no_grad

__all__ = ["SequentialRecommender"]


class SequentialRecommender(Module):
    """Base class for sequential recommendation models.

    Sub-classes must set the attributes

    ``num_users`` / ``num_items``
        Dataset dimensions.
    ``input_length``
        Number of most-recent items fed to the model (``n_h`` for HAM,
        ``L`` for Caser/HGN, ``n`` for SASRec).
    ``pad_id``
        Padding item id (always ``num_items``).

    and implement :meth:`sequence_representation` and
    :meth:`candidate_item_embeddings` (and optionally :meth:`item_bias`).
    """

    num_users: int
    num_items: int
    input_length: int
    pad_id: int

    # ------------------------------------------------------------------ #
    # Interface to implement
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        """Representation of each (user, recent items) pair.

        Parameters
        ----------
        users:
            ``(B,)`` int array of user ids.
        inputs:
            ``(B, input_length)`` int array of the most recent items,
            left-padded with :attr:`pad_id`.

        Returns
        -------
        Tensor
            ``(B, out_dim)`` representation; ``out_dim`` matches the
            second dimension of :meth:`candidate_item_embeddings`.
        """
        raise NotImplementedError

    def candidate_item_embeddings(self) -> Tensor:
        """Candidate ("target") item embedding table, shape ``(num_items + 1, out_dim)``.

        Row ``pad_id`` corresponds to the padding item and is never
        recommended; it exists so padded target ids can be embedded
        without special cases.
        """
        raise NotImplementedError

    def item_bias(self) -> Tensor | None:
        """Optional per-item bias of shape ``(num_items + 1,)``."""
        return None

    # ------------------------------------------------------------------ #
    # Scoring built on the interface
    # ------------------------------------------------------------------ #
    def score_items(self, users: np.ndarray, inputs: np.ndarray,
                    items: np.ndarray) -> Tensor:
        """Scores of specific candidate items.

        Parameters
        ----------
        items:
            ``(B, T)`` int array of candidate item ids (e.g. the positive
            and sampled negative items during BPR training).

        Returns
        -------
        Tensor of shape ``(B, T)``.
        """
        representation = self.sequence_representation(users, inputs)
        candidates = self.candidate_item_embeddings().take_rows(items)  # (B, T, d)
        scores = (candidates * representation.expand_dims(1)).sum(axis=-1)
        bias = self.item_bias()
        if bias is not None:
            scores = scores + bias.take_rows(items)
        return scores

    def score_all(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Scores of every real item (used for top-k evaluation).

        Evaluation never needs gradients, so the computation runs under
        ``no_grad`` and returns a plain ``(B, num_items)`` array.
        """
        with no_grad():
            representation = self.sequence_representation(users, inputs)
            weights = self.candidate_item_embeddings()
            scores = representation.matmul(weights.T).data[:, : self.num_items]
            bias = self.item_bias()
            if bias is not None:
                scores = scores + bias.data[: self.num_items]
        return scores

    # ------------------------------------------------------------------ #
    # Helpers shared by sub-classes
    # ------------------------------------------------------------------ #
    def _validate_dims(self, num_users: int, num_items: int, embedding_dim: int,
                       input_length: int) -> None:
        if num_users < 1 or num_items < 1:
            raise ValueError("num_users and num_items must be positive")
        if embedding_dim < 1:
            raise ValueError("embedding_dim must be positive")
        if input_length < 1:
            raise ValueError("input_length must be positive")

    def describe(self) -> str:
        """Human-readable model summary used in logs and reports."""
        return (
            f"{self.__class__.__name__}(users={self.num_users}, items={self.num_items}, "
            f"input_length={self.input_length}, parameters={self.num_parameters()})"
        )
