"""Common interface of all sequential recommenders.

Every model in the reproduction scores a candidate item ``j`` for user
``i`` as the dot product of a learned representation of the pair
``(user, recent items)`` with a candidate-item embedding ``w_j`` (plus an
optional per-item bias).  This mirrors the linear scoring function of HAM
(Eq. 7/8) and the output layers of Caser, SASRec and HGN, and lets one
trainer and one evaluator drive every method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd import Module, Tensor, no_grad

__all__ = ["SequentialRecommender", "FrozenScorer"]


@dataclass(frozen=True)
class FrozenScorer:
    """Gradient-free snapshot of a model's linear scoring head.

    Every gradient-based model scores as ``representation @ W.T (+ bias)``;
    freezing captures ``W`` (and the optional bias) as plain arrays so the
    serving engine can score cached representations without touching the
    autograd machinery — and so :meth:`SequentialRecommender.score_all`
    and the engine share one scoring code path.
    """

    num_items: int
    candidate_embeddings: np.ndarray  # (num_items + 1, d), includes the pad row
    item_bias: np.ndarray | None      # (num_items + 1,) or None

    @property
    def embedding_dim(self) -> int:
        return self.candidate_embeddings.shape[1]

    def scores_from_representation(self, representation: np.ndarray) -> np.ndarray:
        """Scores of every real item, ``(B, num_items)``, from ``(B, d)`` reps."""
        scores = representation @ self.candidate_embeddings.T
        scores = scores[:, : self.num_items]
        if self.item_bias is not None:
            scores = scores + self.item_bias[: self.num_items]
        return scores


class SequentialRecommender(Module):
    """Base class for sequential recommendation models.

    Sub-classes must set the attributes

    ``num_users`` / ``num_items``
        Dataset dimensions.
    ``input_length``
        Number of most-recent items fed to the model (``n_h`` for HAM,
        ``L`` for Caser/HGN, ``n`` for SASRec).
    ``pad_id``
        Padding item id (always ``num_items``).

    and implement :meth:`sequence_representation` and
    :meth:`candidate_item_embeddings` (and optionally :meth:`item_bias`).
    """

    num_users: int
    num_items: int
    input_length: int
    pad_id: int

    # ------------------------------------------------------------------ #
    # Interface to implement
    # ------------------------------------------------------------------ #
    def sequence_representation(self, users: np.ndarray, inputs: np.ndarray) -> Tensor:
        """Representation of each (user, recent items) pair.

        Parameters
        ----------
        users:
            ``(B,)`` int array of user ids.
        inputs:
            ``(B, input_length)`` int array of the most recent items,
            left-padded with :attr:`pad_id`.

        Returns
        -------
        Tensor
            ``(B, out_dim)`` representation; ``out_dim`` matches the
            second dimension of :meth:`candidate_item_embeddings`.
        """
        raise NotImplementedError

    def candidate_item_embeddings(self) -> Tensor:
        """Candidate ("target") item embedding table, shape ``(num_items + 1, out_dim)``.

        Row ``pad_id`` corresponds to the padding item and is never
        recommended; it exists so padded target ids can be embedded
        without special cases.
        """
        raise NotImplementedError

    def item_bias(self) -> Tensor | None:
        """Optional per-item bias of shape ``(num_items + 1,)``."""
        return None

    # ------------------------------------------------------------------ #
    # Scoring built on the interface
    # ------------------------------------------------------------------ #
    def score_items(self, users: np.ndarray, inputs: np.ndarray,
                    items: np.ndarray) -> Tensor:
        """Scores of specific candidate items.

        Parameters
        ----------
        items:
            ``(B, T)`` int array of candidate item ids (e.g. the positive
            and sampled negative items during BPR training).

        Returns
        -------
        Tensor of shape ``(B, T)``.
        """
        representation = self.sequence_representation(users, inputs)
        return self._candidate_scores(representation, items)

    def _candidate_scores(self, representation: Tensor, items: np.ndarray) -> Tensor:
        """Dot the ``(B, d)`` representation with ``(B, T)`` candidate ids.

        The one scoring body shared by :meth:`score_items` and the fused
        :meth:`score_item_pairs`, so the two training paths cannot
        diverge.
        """
        candidates = self.candidate_item_embeddings().take_rows(items)  # (B, T, d)
        scores = (candidates * representation.expand_dims(1)).sum(axis=-1)
        bias = self.item_bias()
        if bias is not None:
            scores = scores + bias.take_rows(items)
        return scores

    def score_item_pairs(self, users: np.ndarray, inputs: np.ndarray,
                         positives: np.ndarray,
                         negatives: np.ndarray) -> tuple[Tensor, Tensor]:
        """Fused BPR forward: positive and negative scores in one pass.

        The two :meth:`score_items` calls of the naive BPR step each run
        the full :meth:`sequence_representation` forward — the expensive
        part of the step — even though both candidate sets condition on
        the *same* (user, recent items) pair.  Here the representation is
        computed once and both candidate sets go through one
        ``take_rows`` on the concatenated ids, halving the forward (and
        the backward through the sequence encoder).

        Parameters
        ----------
        positives:
            ``(B, T)`` target item ids.
        negatives:
            ``(B, N)`` sampled negative ids (``N`` need not equal ``T``).

        Returns
        -------
        ``(positive_scores, negative_scores)`` of shapes ``(B, T)`` and
        ``(B, N)``.
        """
        positives = np.asarray(positives, dtype=np.int64)
        negatives = np.asarray(negatives, dtype=np.int64)
        items = np.concatenate([positives, negatives], axis=1)
        representation = self.sequence_representation(users, inputs)
        scores = self._candidate_scores(representation, items)
        split = positives.shape[1]
        return scores[:, :split], scores[:, split:]

    def freeze(self, copy: bool = True) -> FrozenScorer:
        """Snapshot the scoring head as a :class:`FrozenScorer`.

        ``copy=True`` (the default) detaches the snapshot from further
        training — the serving engine's "materialize once" contract.
        ``copy=False`` returns views onto the live parameters, which is
        what :meth:`score_all` uses to avoid per-call copies.
        """
        with no_grad():
            table = self.candidate_item_embeddings().data
            bias = self.item_bias()
            bias_data = None if bias is None else bias.data
        if copy:
            table = np.array(table, copy=True)
            bias_data = None if bias_data is None else np.array(bias_data, copy=True)
        return FrozenScorer(num_items=self.num_items, candidate_embeddings=table,
                            item_bias=bias_data)

    def score_all(self, users: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Scores of every real item (used for top-k evaluation).

        Evaluation never needs gradients, so the computation runs under
        ``no_grad`` and returns a plain ``(B, num_items)`` array.
        """
        with no_grad():
            representation = self.sequence_representation(users, inputs).data
        return self.freeze(copy=False).scores_from_representation(representation)

    # ------------------------------------------------------------------ #
    # Helpers shared by sub-classes
    # ------------------------------------------------------------------ #
    def _validate_dims(self, num_users: int, num_items: int, embedding_dim: int,
                       input_length: int) -> None:
        if num_users < 1 or num_items < 1:
            raise ValueError("num_users and num_items must be positive")
        if embedding_dim < 1:
            raise ValueError("embedding_dim must be positive")
        if input_length < 1:
            raise ValueError("input_length must be positive")

    def describe(self) -> str:
        """Human-readable model summary used in logs and reports."""
        return (
            f"{self.__class__.__name__}(users={self.num_users}, items={self.num_items}, "
            f"input_length={self.input_length}, parameters={self.num_parameters()})"
        )
