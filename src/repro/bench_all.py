"""One-shot regression guard over every persisted ``BENCH_*.json``.

Each benchmark family ships a pytest guard that re-reads its persisted
artifact and fails if a headline metric regressed (e.g.
``benchmarks/test_serving_latency.py`` pins ``speedup >= 3.0``).  Those
guards only run when their test module is selected; nothing checks *all*
artifacts in one pass.  This module is that pass — the first slice of a
perf-CI gate: a registry mapping artifact family name to a guard
callable that mirrors the thresholds the pytest guards assert, plus a
discovery loop over ``benchmarks/results/BENCH_*.json``.

Guards follow the same machine-capability convention as the tests:
correctness bits (bit-parity, recovery flags) are checked on every
machine, while relative-speed thresholds are skipped when the artifact
was recorded on a single-core runner (``cpu_count < 2`` in the
payload) — a laptop in power-save mode must not turn a real artifact
into a false alarm.

``repro-ham bench-all`` and ``make bench-all`` are the entry points;
:func:`run_all_guards` returns structured results so the CLI can print
one line per artifact and exit non-zero on any failure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.bench_schema import read_bench_report

__all__ = [
    "GuardFailure",
    "GuardResult",
    "GUARDS",
    "discover_artifacts",
    "require_multicore",
    "run_guard",
    "run_all_guards",
]


def require_multicore() -> None:
    """Skip the calling test unless this machine has at least 2 cores.

    The runtime half of the machine-capability convention: tests marked
    ``multicore`` call this first, so ``pytest -m multicore`` selects
    them everywhere but they skip (rather than fail on scheduler noise)
    on single-core runners.
    """
    import pytest

    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(f"needs >= 2 cores (cpu_count={cpus})")


class GuardFailure(AssertionError):
    """A headline metric regressed past its pinned threshold.

    Raised by guard callables via ``_require``; distinguishes a metric
    regression from an unreadable artifact.
    """


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise GuardFailure(message)


def _multicore(report: dict[str, Any]) -> bool:
    return report.get("cpu_count", 1) >= 2


def _guard_serving(report: dict[str, Any]) -> list[str]:
    _require(report["speedup"] >= 3.0,
             f"serving cache speedup regressed to {report['speedup']:.2f}x")
    return []


def _guard_training(report: dict[str, Any]) -> list[str]:
    _require(report["speedup"] >= 2.0,
             f"training hot-path speedup regressed to {report['speedup']:.2f}x")
    return []


def _guard_parallel(report: dict[str, Any]) -> list[str]:
    _require(report["topk_bit_identical"] is True,
             "sharded top-k no longer bit-identical to serial")
    if not _multicore(report):
        return ["eval_sweep_speedup (single-core artifact)"]
    _require(report["eval_sweep_speedup"] >= 2.0,
             f"parallel eval-sweep speedup regressed to "
             f"{report['eval_sweep_speedup']:.2f}x")
    return []


def _guard_gateway(report: dict[str, Any]) -> list[str]:
    _require(report["topk_bit_identical"] is True,
             "gateway batched top-k no longer bit-identical")
    if not _multicore(report):
        return ["throughput_speedup (single-core artifact)"]
    _require(report["throughput_speedup"] >= 3.0,
             f"gateway throughput speedup regressed to "
             f"{report['throughput_speedup']:.2f}x")
    _require(report["within_p95_budget"] is True,
             "gateway batched p95 blew the fixed latency budget")
    return []


def _guard_cluster(report: dict[str, Any]) -> list[str]:
    _require(report["zero_failed_requests"] is True,
             "cluster failover dropped requests")
    _require(report["post_failover_bit_identical"] is True,
             "post-failover answers no longer bit-identical")
    _require(report["failover_recovery_s"] < 30.0,
             f"failover recovery took {report['failover_recovery_s']:.1f}s")
    if not _multicore(report):
        return ["networked_overhead_x (single-core artifact)"]
    _require(report["networked_overhead_x"] < 10.0,
             f"networked overhead grew to {report['networked_overhead_x']:.1f}x")
    return []


def _guard_resilience(report: dict[str, Any]) -> list[str]:
    _require(report["post_recovery_bit_identical"] is True,
             "post-recovery answers no longer bit-identical")
    _require(report["degraded_bit_identical"] is True,
             "degraded-mode answers no longer bit-identical")
    _require(report["recovery_overhead_s"] < 30.0,
             f"worker recovery took {report['recovery_overhead_s']:.1f}s")
    if not _multicore(report):
        return ["post_recovery_p50_s (single-core artifact)"]
    _require(report["post_recovery_p50_s"] <= 3.0 * report["baseline_p50_s"],
             "post-recovery p50 latency exceeds 3x the pre-fault baseline")
    return []


def _guard_durability(report: dict[str, Any]) -> list[str]:
    _require(report["torn_tail_recovered"] is True,
             "torn-tail WAL recovery failed")
    _require(report["torn_tail_records_recovered"] == report["appends"] - 1,
             "torn-tail recovery lost committed records")
    _require(report["compact_reclaim_fraction"] > 0.0,
             "WAL compaction reclaimed no space")
    _require(report["recovery_records_per_s"] > 0,
             "WAL replay throughput recorded as zero")
    return []


def _guard_ann(report: dict[str, Any]) -> list[str]:
    _require(report["best_recall_at_k"] >= report["recall_floor"],
             f"no ANN dial setting reached recall "
             f"{report['recall_floor']:.2f} (best "
             f"{report['best_recall_at_k']:.3f})")
    _require(report["best_speedup_x"] >= 3.0,
             f"ANN speedup at recall floor regressed to "
             f"{report['best_speedup_x']:.2f}x")
    return []


#: Family name (the ``BENCH_<name>.json`` stem suffix) -> guard callable.
#: A guard raises :class:`GuardFailure` on regression and returns the
#: list of checks it skipped (machine-capability gates).
GUARDS: dict[str, Callable[[dict[str, Any]], list[str]]] = {
    "serving": _guard_serving,
    "training": _guard_training,
    "parallel": _guard_parallel,
    "gateway": _guard_gateway,
    "cluster": _guard_cluster,
    "resilience": _guard_resilience,
    "durability": _guard_durability,
    "ann": _guard_ann,
}


@dataclass(frozen=True)
class GuardResult:
    """Outcome of one artifact's guard run."""

    family: str
    path: str
    #: ``"pass"``, ``"fail"``, or ``"unknown"`` (no registered guard).
    status: str
    #: Failure message when status is ``"fail"``.
    message: str = ""
    #: Threshold checks skipped because of machine capability.
    skipped: tuple[str, ...] = ()

    def line(self) -> str:
        tag = {"pass": "PASS", "fail": "FAIL", "unknown": "????"}[self.status]
        extra = f"  ({self.message})" if self.message else ""
        if self.skipped:
            extra += f"  [skipped: {', '.join(self.skipped)}]"
        return f"{tag}  {self.family:<12}{self.path}{extra}"


def discover_artifacts(results_dir: str | Path) -> list[Path]:
    """Every ``BENCH_*.json`` under ``results_dir``, sorted by name."""
    return sorted(Path(results_dir).glob("BENCH_*.json"))


def run_guard(path: str | Path) -> GuardResult:
    """Run the registered guard for one artifact."""
    path = Path(path)
    family = path.stem[len("BENCH_"):]
    guard = GUARDS.get(family)
    if guard is None:
        return GuardResult(family=family, path=str(path), status="unknown",
                           message="no guard registered for this family")
    try:
        report = read_bench_report(path)
        skipped = guard(report)
    except GuardFailure as exc:
        return GuardResult(family=family, path=str(path), status="fail",
                           message=str(exc))
    except (KeyError, TypeError, ValueError, OSError) as exc:
        return GuardResult(family=family, path=str(path), status="fail",
                           message=f"unreadable artifact: {exc!r}")
    return GuardResult(family=family, path=str(path), status="pass",
                       skipped=tuple(skipped))


def run_all_guards(results_dir: str | Path) -> list[GuardResult]:
    """Discover and guard every artifact; empty dir yields an empty list."""
    return [run_guard(path) for path in discover_artifacts(results_dir)]
