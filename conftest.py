"""Repo-wide pytest hooks.

The ``chaos_net`` tier drives real sockets, spawned node processes and
injected stalls; a regression there can hang instead of fail.  Since
the environment deliberately carries no pytest-timeout plugin, a hard
per-test wall-clock bound is enforced here with ``SIGALRM``: a
``chaos_net``-marked test that outlives the budget raises
``TimeoutError`` inside the test call instead of wedging the whole run.
Override the budget with ``REPRO_CHAOS_NET_TIMEOUT_S``.
"""

from __future__ import annotations

import os
import signal

import pytest

DEFAULT_CHAOS_NET_TIMEOUT_S = 120.0


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if item.get_closest_marker("chaos_net") is None \
            or not hasattr(signal, "SIGALRM"):
        yield
        return
    timeout_s = float(os.environ.get("REPRO_CHAOS_NET_TIMEOUT_S",
                                     DEFAULT_CHAOS_NET_TIMEOUT_S))

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the chaos_net hard timeout of "
            f"{timeout_s:.0f}s (set REPRO_CHAOS_NET_TIMEOUT_S to change)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
