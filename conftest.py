"""Repo-wide pytest hooks.

The ``chaos_net`` tier drives real sockets, spawned node processes and
injected stalls; the ``chaos_disk`` tier drives real WAL files, router
restarts and injected disk faults.  A regression in either can hang
instead of fail.  Since the environment deliberately carries no
pytest-timeout plugin, a hard per-test wall-clock bound is enforced
here with ``SIGALRM``: a chaos-marked test that outlives the budget
raises ``TimeoutError`` inside the test call instead of wedging the
whole run.  Override the budgets with ``REPRO_CHAOS_NET_TIMEOUT_S``
and ``REPRO_CHAOS_DISK_TIMEOUT_S``.
"""

from __future__ import annotations

import os
import signal

import pytest

DEFAULT_CHAOS_NET_TIMEOUT_S = 120.0
DEFAULT_CHAOS_DISK_TIMEOUT_S = 120.0

#: marker name -> (environment override, default budget in seconds)
_HARD_TIMEOUT_TIERS = {
    "chaos_net": ("REPRO_CHAOS_NET_TIMEOUT_S", DEFAULT_CHAOS_NET_TIMEOUT_S),
    "chaos_disk": ("REPRO_CHAOS_DISK_TIMEOUT_S", DEFAULT_CHAOS_DISK_TIMEOUT_S),
}


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    tier = next((name for name in _HARD_TIMEOUT_TIERS
                 if item.get_closest_marker(name) is not None), None)
    if tier is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    env_var, default_s = _HARD_TIMEOUT_TIERS[tier]
    timeout_s = float(os.environ.get(env_var, default_s))

    def _on_alarm(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {tier} hard timeout of "
            f"{timeout_s:.0f}s (set {env_var} to change)")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
